#ifndef LOFKIT_INDEX_RKD_FOREST_INDEX_H_
#define LOFKIT_INDEX_RKD_FOREST_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "dataset/point_block.h"
#include "index/knn_index.h"

namespace lofkit {

/// Approximate kNN via a randomized kd-forest with shared best-bin-first
/// search — the engine for the regime where section 7.4's exact indexes
/// degrade toward a linear scan (the Fig-10 dimensionality wall).
///
/// Build() grows `trees` independent kd-trees over the full dataset. Each
/// node splits at the median of a dimension drawn uniformly from the
/// `split_candidates` highest-variance dimensions of its point range (the
/// FLANN-style randomization), so the trees decorrelate: a true neighbor
/// hidden behind an early splitting plane of one tree sits in an easily
/// reached leaf of another. All randomness comes from a caller-provided
/// seed — equal seeds give bit-identical forests and queries on every
/// thread count; different seeds give different trees.
///
/// Query() runs one best-bin-first search over all trees at once: a single
/// priority queue (ordered by rank-space MINDIST to each subtree's true
/// bounding box, ties broken by node id) holds the unexplored branches of
/// every tree, and a per-query epoch-stamped bitset deduplicates the
/// candidate points the trees share. SearchParams governs the
/// quality/throughput dial: `checks` caps the examined candidates (never
/// below k — a k-distance neighborhood of at least min(k, eligible)
/// entries always comes back) and `eps` prunes branches that cannot
/// improve the current k-distance by more than (1 + eps). The default
/// params are exact, so the engine passes the same conformance suite as
/// the exact engines; approximation is strictly opt-in.
///
/// QueryRadius() is always exact: every tree holds every point, so a plain
/// pruned traversal of tree 0 answers the closed-ball query; radius
/// consumers (DBSCAN/OPTICS, DB-outlier) keep their exact semantics under
/// this engine.
///
/// Memory: besides the node arenas, the forest keeps one leaf-ordered SoA
/// copy of the data per tree (`trees * n * d` doubles), so leaf scans
/// stream contiguous blocks instead of gathering scattered dataset rows —
/// the classic multi-tree space-for-time trade.
class RkdForestIndex final : public KnnIndex {
 public:
  /// Fixed default seed: reproducible forests out of the box (override via
  /// --ann-seed / Options::seed).
  static constexpr uint64_t kDefaultSeed = 0x10f5eedull;

  struct Options {
    /// Number of randomized trees. More trees raise recall at a given
    /// check budget and multiply build time/memory; 4-16 is the useful
    /// range, 8 the conventional default.
    size_t trees = 8;

    /// Seed for the per-tree split-dimension draws.
    uint64_t seed = kDefaultSeed;

    /// Search-time quality dial (exact by default).
    SearchParams search;

    /// Points per leaf. Smaller than the exact kd-tree's 16 on purpose:
    /// the shared check budget is spent leaf-by-leaf, and finer leaves let
    /// it sample more distinct regions, which measures as higher recall
    /// at the same `checks`.
    size_t leaf_size = 8;

    /// The split dimension is drawn among this many top-variance
    /// dimensions of the node's range (clamped to the dataset dimension).
    size_t split_candidates = 5;
  };

  RkdForestIndex() = default;
  explicit RkdForestIndex(const Options& options) : options_(options) {}

  Status Build(const Dataset& data, const Metric& metric) override;

  using KnnIndex::Query;
  using KnnIndex::QueryRadius;
  Status Query(std::span<const double> query, size_t k,
               std::optional<uint32_t> exclude,
               KnnSearchContext& ctx) const override;
  Status QueryRadius(std::span<const double> query, double radius,
                     std::optional<uint32_t> exclude,
                     KnnSearchContext& ctx) const override;
  const Dataset* dataset() const override { return data_; }
  std::string_view name() const override { return "rkd_forest"; }

  const Options& options() const { return options_; }
  size_t tree_count() const { return roots_.size(); }
  size_t node_count() const { return nodes_.size(); }

  /// FNV-1a hash over the forest's structure (per-tree topology, split
  /// layout, and leaf point order). Two builds with equal seeds over the
  /// same data hash identically; a different seed changes the draws and
  /// therefore (overwhelmingly likely) the digest. Test/debug hook.
  uint64_t StructureDigest() const;

 private:
  struct Node {
    // Bounding box of the points under this node: boxes_[box_offset] holds
    // d minima followed by d maxima.
    size_t box_offset = 0;
    // Children; kNone marks a leaf.
    uint32_t left = kNone;
    uint32_t right = kNone;
    // Point-id range [begin, end) in ids_ (leaves only). Absolute offsets:
    // tree t's ids live in ids_[t * n, (t + 1) * n).
    uint32_t begin = 0;
    uint32_t end = 0;
    // Start of this leaf's block-aligned group in view_ (leaves only).
    uint32_t view_begin = 0;
    // Median split (internal nodes): left holds coordinates <= split_val,
    // right holds >= split_val. Descents branch on one compare against
    // these instead of two O(d) box bounds.
    uint32_t split_dim = 0;
    double split_val = 0.0;

    static constexpr uint32_t kNone = 0xffffffffu;
    bool is_leaf() const { return left == kNone; }
  };

  struct BuildScratch;  // per-node moment/candidate buffers (.cc-local)

  uint32_t BuildNode(uint32_t begin, uint32_t end, Rng& rng,
                     BuildScratch& scratch);
  void ScanLeaf(const Node& node, std::span<const double> query,
                uint32_t skip, std::vector<uint32_t>& mark, uint32_t epoch,
                internal_index::KnnCollector& collector, size_t* examined,
                QueryStats* stats) const;
  void SearchRadiusNode(uint32_t node_id, std::span<const double> query,
                        double radius, double radius_rank_hi, uint32_t skip,
                        std::vector<Neighbor>& result,
                        QueryStats* stats) const;
  std::span<const double> BoxLo(const Node& node) const {
    return {boxes_.data() + node.box_offset, dim_};
  }
  std::span<const double> BoxHi(const Node& node) const {
    return {boxes_.data() + node.box_offset + dim_, dim_};
  }

  Options options_;
  const Dataset* data_ = nullptr;
  const Metric* metric_ = nullptr;
  size_t dim_ = 0;
  std::vector<Node> nodes_;    // all trees share one node arena
  std::vector<double> boxes_;
  std::vector<uint32_t> ids_;  // trees * n entries, one block per tree
  std::vector<uint32_t> roots_;
  PointBlockView view_;  // leaf-ordered SoA blocks, one group per leaf
  DistanceKernels kern_;
};

}  // namespace lofkit

#endif  // LOFKIT_INDEX_RKD_FOREST_INDEX_H_
