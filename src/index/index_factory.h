#ifndef LOFKIT_INDEX_INDEX_FACTORY_H_
#define LOFKIT_INDEX_INDEX_FACTORY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "index/knn_index.h"

namespace lofkit {

/// The kNN engines lofkit ships, mirroring the options of section 7.4.
enum class IndexKind {
  kLinearScan,  ///< sequential scan (exact, O(n) per query)
  kGrid,        ///< uniform grid (low dimensions)
  kKdTree,      ///< KD-tree (medium dimensions)
  kRStarTree,   ///< R*-tree with X-tree supernodes (the paper's choice)
  kVaFile,      ///< vector-approximation file (high dimensions)
  kMTree,       ///< M-tree (general metric spaces, e.g. angular distance)
};

/// Creates an unbuilt index of the given kind.
std::unique_ptr<KnnIndex> CreateIndex(IndexKind kind);

/// Creates an index by name: "linear_scan", "grid", "kd_tree",
/// "rstar_tree", "va_file" or "m_tree".
Result<std::unique_ptr<KnnIndex>> CreateIndexByName(std::string_view name);

/// All index kinds, for parameterized tests and ablation benches.
std::vector<IndexKind> AllIndexKinds();

/// Canonical name of an index kind.
std::string_view IndexKindName(IndexKind kind);

/// Picks the engine the paper's guidance suggests for a given
/// dimensionality: grid for d <= 2, tree for medium d, VA-file beyond.
IndexKind RecommendIndexKind(size_t dimension);

}  // namespace lofkit

#endif  // LOFKIT_INDEX_INDEX_FACTORY_H_
