#ifndef LOFKIT_INDEX_INDEX_FACTORY_H_
#define LOFKIT_INDEX_INDEX_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "index/knn_index.h"

namespace lofkit {

/// The kNN engines lofkit ships, mirroring the options of section 7.4.
enum class IndexKind {
  kLinearScan,  ///< sequential scan (exact, O(n) per query)
  kGrid,        ///< uniform grid (low dimensions)
  kKdTree,      ///< KD-tree (medium dimensions)
  kRStarTree,   ///< R*-tree with X-tree supernodes (the paper's choice)
  kVaFile,      ///< vector-approximation file (high dimensions)
  kMTree,       ///< M-tree (general metric spaces, e.g. angular distance)
  kRkdForest,   ///< randomized kd-forest (approximate, beyond Fig-10's wall)
};

/// Construction knobs of the approximate engines (currently only the
/// randomized kd-forest consumes them; exact engines ignore the struct).
/// The defaults build an *exact* forest: unbounded checks, zero eps, a
/// fixed seed — so CreateIndex(kRkdForest) is safe wherever an exact
/// engine is, and approximation remains an explicit caller decision.
struct AnnIndexOptions {
  /// Number of randomized trees in the forest.
  size_t trees = 8;
  /// Seed for the per-tree split-dimension draws. Equal seeds give
  /// bit-identical forests and query results on every thread count.
  uint64_t seed = 0x10f5eedull;
  /// Search-time quality dial (checks budget + eps slack).
  SearchParams search;
};

/// Creates an unbuilt index of the given kind with default options.
std::unique_ptr<KnnIndex> CreateIndex(IndexKind kind);

/// Creates an unbuilt index of the given kind; `ann` configures the
/// approximate engines and is ignored by the exact ones.
std::unique_ptr<KnnIndex> CreateIndex(IndexKind kind,
                                      const AnnIndexOptions& ann);

/// Creates an index by name ("linear_scan", "grid", "kd_tree",
/// "rstar_tree", "va_file", "m_tree", "rkd_forest"). An unknown name fails
/// with NotFound, listing every valid name.
Result<std::unique_ptr<KnnIndex>> CreateIndexByName(std::string_view name);

/// As above, with ANN construction options.
Result<std::unique_ptr<KnnIndex>> CreateIndexByName(
    std::string_view name, const AnnIndexOptions& ann);

/// All index kinds, for parameterized tests and ablation benches.
std::vector<IndexKind> AllIndexKinds();

/// Canonical name of an index kind.
std::string_view IndexKindName(IndexKind kind);

/// Picks the engine the paper's guidance suggests for a given
/// dimensionality: grid for d <= 2, tree for medium d, VA-file beyond.
/// Only ever recommends exact engines — opting into approximation (the
/// kd-forest) is a quality decision the caller must make explicitly.
IndexKind RecommendIndexKind(size_t dimension);

}  // namespace lofkit

#endif  // LOFKIT_INDEX_INDEX_FACTORY_H_
