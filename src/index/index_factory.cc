#include "index/index_factory.h"

#include "index/grid_index.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"
#include "index/m_tree_index.h"
#include "index/rkd_forest_index.h"
#include "index/rstar_tree_index.h"
#include "index/va_file_index.h"

namespace lofkit {

std::unique_ptr<KnnIndex> CreateIndex(IndexKind kind) {
  return CreateIndex(kind, AnnIndexOptions{});
}

std::unique_ptr<KnnIndex> CreateIndex(IndexKind kind,
                                      const AnnIndexOptions& ann) {
  switch (kind) {
    case IndexKind::kLinearScan:
      return std::make_unique<LinearScanIndex>();
    case IndexKind::kGrid:
      return std::make_unique<GridIndex>();
    case IndexKind::kKdTree:
      return std::make_unique<KdTreeIndex>();
    case IndexKind::kRStarTree:
      return std::make_unique<RStarTreeIndex>();
    case IndexKind::kVaFile:
      return std::make_unique<VaFileIndex>();
    case IndexKind::kMTree:
      return std::make_unique<MTreeIndex>();
    case IndexKind::kRkdForest: {
      RkdForestIndex::Options options;
      options.trees = ann.trees;
      options.seed = ann.seed;
      options.search = ann.search;
      return std::make_unique<RkdForestIndex>(options);
    }
  }
  return nullptr;
}

Result<std::unique_ptr<KnnIndex>> CreateIndexByName(std::string_view name) {
  return CreateIndexByName(name, AnnIndexOptions{});
}

Result<std::unique_ptr<KnnIndex>> CreateIndexByName(
    std::string_view name, const AnnIndexOptions& ann) {
  for (IndexKind kind : AllIndexKinds()) {
    if (IndexKindName(kind) == name) return CreateIndex(kind, ann);
  }
  std::string valid;
  for (IndexKind kind : AllIndexKinds()) {
    if (!valid.empty()) valid += ", ";
    valid += IndexKindName(kind);
  }
  return Status::NotFound("unknown index kind: " + std::string(name) +
                          " (valid: " + valid + ")");
}

std::vector<IndexKind> AllIndexKinds() {
  return {IndexKind::kLinearScan, IndexKind::kGrid,  IndexKind::kKdTree,
          IndexKind::kRStarTree,  IndexKind::kVaFile, IndexKind::kMTree,
          IndexKind::kRkdForest};
}

std::string_view IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kLinearScan:
      return "linear_scan";
    case IndexKind::kGrid:
      return "grid";
    case IndexKind::kKdTree:
      return "kd_tree";
    case IndexKind::kRStarTree:
      return "rstar_tree";
    case IndexKind::kVaFile:
      return "va_file";
    case IndexKind::kMTree:
      return "m_tree";
    case IndexKind::kRkdForest:
      return "rkd_forest";
  }
  return "unknown";
}

IndexKind RecommendIndexKind(size_t dimension) {
  if (dimension <= 2) return IndexKind::kGrid;
  if (dimension <= 12) return IndexKind::kRStarTree;
  if (dimension <= 24) return IndexKind::kKdTree;
  return IndexKind::kVaFile;
}

}  // namespace lofkit
