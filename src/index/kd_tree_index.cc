#include "index/kd_tree_index.h"

#include <algorithm>
#include <cmath>

#include "common/fail_point.h"
#include "common/string_util.h"

namespace lofkit {

namespace {

Status CheckQuery(const Dataset* data, std::span<const double> query) {
  if (data == nullptr) {
    return Status::FailedPrecondition("index queried before Build()");
  }
  if (query.size() != data->dimension()) {
    return Status::InvalidArgument(
        StrFormat("query has dimension %zu, index has %zu", query.size(),
                  data->dimension()));
  }
  return Status::OK();
}

}  // namespace

Status KdTreeIndex::Build(const Dataset& data, const Metric& metric) {
  LOFKIT_FAIL_POINT("index.build");
  if (data.empty()) {
    return Status::InvalidArgument("cannot build index over empty dataset");
  }
  data_ = &data;
  metric_ = &metric;
  dim_ = data.dimension();
  nodes_.clear();
  boxes_.clear();
  ids_.resize(data.size());
  for (size_t i = 0; i < data.size(); ++i) ids_[i] = static_cast<uint32_t>(i);
  nodes_.reserve(2 * data.size() / kLeafSize + 2);
  root_ = BuildNode(0, static_cast<uint32_t>(data.size()));
  // Pack each leaf as its own block-aligned group so a leaf scan covers
  // whole blocks of its own points only.
  PointBlockBuilder builder(data);
  for (Node& node : nodes_) {
    if (!node.is_leaf()) continue;
    node.view_begin = static_cast<uint32_t>(builder.BeginGroup());
    for (uint32_t i = node.begin; i < node.end; ++i) builder.Append(ids_[i]);
  }
  view_ = std::move(builder).Build();
  kern_ = metric.kernels();
  return Status::OK();
}

uint32_t KdTreeIndex::BuildNode(uint32_t begin, uint32_t end) {
  const uint32_t node_id = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  // Compute the bounding box of [begin, end).
  const size_t box_offset = boxes_.size();
  boxes_.resize(box_offset + 2 * dim_);
  double* lo = boxes_.data() + box_offset;
  double* hi = lo + dim_;
  for (size_t d = 0; d < dim_; ++d) {
    lo[d] = std::numeric_limits<double>::infinity();
    hi[d] = -std::numeric_limits<double>::infinity();
  }
  for (uint32_t i = begin; i < end; ++i) {
    auto p = data_->point(ids_[i]);
    for (size_t d = 0; d < dim_; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  nodes_[node_id].box_offset = box_offset;
  nodes_[node_id].begin = begin;
  nodes_[node_id].end = end;

  // Split on the widest dimension; stop when small or degenerate.
  size_t split_dim = 0;
  double widest = 0.0;
  for (size_t d = 0; d < dim_; ++d) {
    const double extent = hi[d] - lo[d];
    if (extent > widest) {
      widest = extent;
      split_dim = d;
    }
  }
  if (end - begin <= kLeafSize || widest <= 0.0) {
    return node_id;  // leaf
  }

  const uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                   ids_.begin() + end, [&](uint32_t a, uint32_t b) {
                     return data_->point(a)[split_dim] <
                            data_->point(b)[split_dim];
                   });
  // boxes_ may reallocate during recursion, so do not hold lo/hi across it.
  const uint32_t left = BuildNode(begin, mid);
  const uint32_t right = BuildNode(mid, end);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void KdTreeIndex::SearchNode(uint32_t node_id, std::span<const double> query,
                             std::optional<uint32_t> exclude,
                             internal_index::KnnCollector& collector,
                             QueryStats* stats) const {
  const Node& node = nodes_[node_id];
  if (node.is_leaf()) {
    const uint32_t skip =
        exclude.has_value() ? *exclude : PointBlockView::kPaddingId;
    const uint32_t count = node.end - node.begin;
    if (stats != nullptr) {
      ++stats->leaf_visits;
      stats->distance_evals += count;
    }
    double rank[PointBlockView::kLanes];
    for (uint32_t off = 0; off < count; off += PointBlockView::kLanes) {
      const size_t pos = node.view_begin + off;
      kern_.rank_block(kern_.ctx, query.data(),
                       view_.block(pos / PointBlockView::kLanes), dim_, rank);
      const uint32_t lanes = std::min<uint32_t>(PointBlockView::kLanes,
                                                count - off);
      for (uint32_t j = 0; j < lanes; ++j) {
        const uint32_t id = view_.id(pos + j);
        if (id == skip) {
          if (stats != nullptr) --stats->distance_evals;
          continue;
        }
        collector.Offer(id, rank[j]);
      }
    }
    return;
  }
  if (stats != nullptr) ++stats->node_visits;
  const Node& left = nodes_[node.left];
  const Node& right = nodes_[node.right];
  // Same bound math as Metric::MinRankToBox, minus the virtual dispatch:
  // this pair of calls is the whole per-node cost of the traversal.
  const double rank_left = kern_.rank_box(kern_.ctx, query.data(),
                                          BoxLo(left).data(),
                                          BoxHi(left).data(), dim_);
  const double rank_right = kern_.rank_box(kern_.ctx, query.data(),
                                           BoxLo(right).data(),
                                           BoxHi(right).data(), dim_);
  const uint32_t first = rank_left <= rank_right ? node.left : node.right;
  const uint32_t second = rank_left <= rank_right ? node.right : node.left;
  const double rank_first = std::min(rank_left, rank_right);
  const double rank_second = std::max(rank_left, rank_right);
  if (rank_first <= collector.Tau()) {
    SearchNode(first, query, exclude, collector, stats);
  } else if (stats != nullptr) {
    ++stats->rank_prune_hits;
  }
  if (rank_second <= collector.Tau()) {
    SearchNode(second, query, exclude, collector, stats);
  } else if (stats != nullptr) {
    ++stats->rank_prune_hits;
  }
}

void KdTreeIndex::SearchRadius(uint32_t node_id,
                               std::span<const double> query, double radius,
                               double radius_rank_hi,
                               std::optional<uint32_t> exclude,
                               std::vector<Neighbor>& result,
                               QueryStats* stats) const {
  const Node& node = nodes_[node_id];
  if (kern_.rank_box(kern_.ctx, query.data(), BoxLo(node).data(),
                     BoxHi(node).data(), dim_) > radius_rank_hi) {
    if (stats != nullptr) ++stats->rank_prune_hits;
    return;
  }
  if (node.is_leaf()) {
    const uint32_t skip =
        exclude.has_value() ? *exclude : PointBlockView::kPaddingId;
    const uint32_t count = node.end - node.begin;
    if (stats != nullptr) {
      ++stats->leaf_visits;
      stats->distance_evals += count;
    }
    double rank[PointBlockView::kLanes];
    for (uint32_t off = 0; off < count; off += PointBlockView::kLanes) {
      const size_t pos = node.view_begin + off;
      kern_.rank_block(kern_.ctx, query.data(),
                       view_.block(pos / PointBlockView::kLanes), dim_, rank);
      const uint32_t lanes = std::min<uint32_t>(PointBlockView::kLanes,
                                                count - off);
      for (uint32_t j = 0; j < lanes; ++j) {
        const uint32_t id = view_.id(pos + j);
        if (id == skip) {
          if (stats != nullptr) --stats->distance_evals;
          continue;
        }
        if (rank[j] > radius_rank_hi) continue;
        const double dist = DistanceFromRank(kern_.squared, rank[j]);
        if (dist <= radius) result.push_back(Neighbor{id, dist});
      }
    }
    return;
  }
  if (stats != nullptr) ++stats->node_visits;
  SearchRadius(node.left, query, radius, radius_rank_hi, exclude, result,
               stats);
  SearchRadius(node.right, query, radius, radius_rank_hi, exclude, result,
               stats);
}

Status KdTreeIndex::Query(std::span<const double> query, size_t k,
                          std::optional<uint32_t> exclude,
                          KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  internal_index::KnnCollector collector(k, ctx);
  if (ctx.stats != nullptr) ++ctx.stats->queries;
  SearchNode(root_, query, exclude, collector, ctx.stats);
  collector.TakeInto(ctx.scratch.out);
  internal_index::RanksToDistances(kern_, ctx.scratch.out);
  return Status::OK();
}

Status KdTreeIndex::QueryRadius(std::span<const double> query, double radius,
                                std::optional<uint32_t> exclude,
                                KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (!(radius >= 0.0)) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  std::vector<Neighbor>& result = ctx.scratch.out;
  result.clear();
  if (ctx.stats != nullptr) ++ctx.stats->queries;
  SearchRadius(root_, query, radius, PruneRankUpperBound(kern_.squared, radius),
               exclude, result, ctx.stats);
  internal_index::SortNeighbors(result);
  return Status::OK();
}

}  // namespace lofkit
