#ifndef LOFKIT_INDEX_M_TREE_INDEX_H_
#define LOFKIT_INDEX_M_TREE_INDEX_H_

#include <vector>

#include "index/knn_index.h"

namespace lofkit {

/// M-tree (Ciaccia/Patella/Zezula, VLDB'97): an exact index for *general*
/// metric spaces, relying only on the triangle inequality — no coordinate
/// boxes. This is the engine to use with metrics whose axis-aligned bounds
/// are vacuous (e.g. AngularMetric, where the box-based engines all
/// degenerate to scans): the LOF definitions are metric-general, and with
/// the M-tree so is the whole lofkit pipeline.
///
/// Structure: every node stores routing objects with covering radii; each
/// entry also caches its distance to the parent routing object, enabling
/// the classic d(q,parent)-based pruning that skips distance computations
/// entirely. Insertion descends by minimum radius enlargement; overflow
/// splits promote the two farthest entries (mM_RAD-style) and partition by
/// generalized hyperplane. kNN queries run best-first on
/// dmin = max(0, d(q, routing) - radius) with the shared tie-preserving
/// collector.
class MTreeIndex final : public KnnIndex {
 public:
  MTreeIndex() = default;

  Status Build(const Dataset& data, const Metric& metric) override;

  using KnnIndex::Query;
  using KnnIndex::QueryRadius;
  Status Query(std::span<const double> query, size_t k,
               std::optional<uint32_t> exclude,
               KnnSearchContext& ctx) const override;
  Status QueryRadius(std::span<const double> query, double radius,
                     std::optional<uint32_t> exclude,
                     KnnSearchContext& ctx) const override;
  const Dataset* dataset() const override { return data_; }
  std::string_view name() const override { return "m_tree"; }

  /// Statistics for tests.
  size_t node_count() const { return nodes_.size(); }
  size_t height() const;

  /// Structural self-check for tests: covering radii really cover all
  /// points beneath each routing object, parent-distance caches are exact,
  /// and every point id appears in exactly one leaf.
  Status CheckInvariants() const;

 private:
  static constexpr size_t kMaxEntries = 32;
  static constexpr uint32_t kNone = 0xffffffffu;

  struct Entry {
    uint32_t object = 0;        // point id: routing object or leaf member
    uint32_t child = kNone;     // subtree (internal entries only)
    double radius = 0.0;        // covering radius (internal entries only)
    double parent_distance = 0.0;  // d(object, parent routing object)
  };

  struct Node {
    bool leaf = true;
    uint32_t parent = kNone;        // parent node
    uint32_t parent_slot = kNone;   // index of this node's entry in parent
    std::vector<Entry> entries;
  };

  double Distance(uint32_t a, uint32_t b) const;
  double DistanceToQuery(std::span<const double> q, uint32_t object) const;

  /// Descends from the root to the leaf best suited for point `id`,
  /// updating covering radii on the way down.
  uint32_t ChooseLeaf(uint32_t id);

  /// Handles an overfull node: split, promote, update parent (recursive).
  void Split(uint32_t node_id);

  /// Routing object of `node_id` as seen from its parent (kNone for root).
  uint32_t RoutingObjectOf(uint32_t node_id) const;

  std::vector<Node> nodes_;
  uint32_t root_ = kNone;
  const Dataset* data_ = nullptr;
  const Metric* metric_ = nullptr;
  DistanceKernels kern_;
};

}  // namespace lofkit

#endif  // LOFKIT_INDEX_M_TREE_INDEX_H_
