#include "index/grid_index.h"

#include <cmath>

#include "common/fail_point.h"
#include "common/string_util.h"

namespace lofkit {

namespace {

Status CheckQuery(const Dataset* data, std::span<const double> query) {
  if (data == nullptr) {
    return Status::FailedPrecondition("index queried before Build()");
  }
  if (query.size() != data->dimension()) {
    return Status::InvalidArgument(
        StrFormat("query has dimension %zu, index has %zu", query.size(),
                  data->dimension()));
  }
  return Status::OK();
}

}  // namespace

Status GridIndex::Build(const Dataset& data, const Metric& metric) {
  LOFKIT_FAIL_POINT("index.build");
  if (data.empty()) {
    return Status::InvalidArgument("cannot build index over empty dataset");
  }
  data_ = &data;
  metric_ = &metric;
  kern_ = metric.kernels();
  buckets_.clear();

  const size_t d = data.dimension();
  box_lo_ = data.Min();
  box_hi_ = data.Max();

  // Aim for roughly one point per cell: n^(1/d) cells per dimension, capped
  // so that packed cell keys fit into 64 bits. Beyond a handful of
  // dimensions the shell enumeration of a query visits up to 3^d cells per
  // shell, so the grid degenerates to a single cell there — a sequential
  // scan, which is also what the paper prescribes for high dimensions.
  constexpr size_t kMaxGridDimensions = 8;
  const double target = std::pow(static_cast<double>(data.size()),
                                 1.0 / static_cast<double>(d));
  size_t cells = d <= kMaxGridDimensions
                     ? static_cast<size_t>(std::max(1.0, std::floor(target)))
                     : 1;
  cells = std::min<size_t>(cells, 64);
  size_t bits = 1;
  while ((size_t{1} << bits) < cells) ++bits;
  while (bits * d > 64) {
    --bits;
  }
  if (bits == 0) {
    bits = 1;
    cells = 1;
  }
  cells = std::min<size_t>(cells, size_t{1} << bits);
  cells_per_dim_ = std::max<size_t>(cells, 1);
  bits_per_dim_ = bits;

  cell_width_.assign(d, 1.0);
  for (size_t i = 0; i < d; ++i) {
    const double range = box_hi_[i] - box_lo_[i];
    cell_width_[i] =
        range > 0.0 ? range / static_cast<double>(cells_per_dim_) : 1.0;
  }

  std::vector<int64_t> cell;
  for (size_t i = 0; i < data.size(); ++i) {
    CellOf(data.point(i), cell);
    buckets_[PackCell(cell)].push_back(static_cast<uint32_t>(i));
  }
  return Status::OK();
}

void GridIndex::CellOf(std::span<const double> point,
                       std::vector<int64_t>& cell) const {
  cell.resize(point.size());
  for (size_t i = 0; i < point.size(); ++i) {
    const double offset = (point[i] - box_lo_[i]) / cell_width_[i];
    int64_t c = static_cast<int64_t>(std::floor(offset));
    c = std::clamp<int64_t>(c, 0, static_cast<int64_t>(cells_per_dim_) - 1);
    cell[i] = c;
  }
}

uint64_t GridIndex::PackCell(std::span<const int64_t> cell) const {
  uint64_t key = 0;
  for (int64_t c : cell) {
    key = (key << bits_per_dim_) | static_cast<uint64_t>(c);
  }
  return key;
}

void GridIndex::CellBounds(std::span<const int64_t> cell,
                           std::vector<double>& lo,
                           std::vector<double>& hi) const {
  const size_t d = cell.size();
  lo.resize(d);
  hi.resize(d);
  for (size_t i = 0; i < d; ++i) {
    lo[i] = box_lo_[i] + static_cast<double>(cell[i]) * cell_width_[i];
    hi[i] = lo[i] + cell_width_[i];
  }
}

template <typename Fn>
void GridIndex::VisitShell(std::span<const int64_t> center, int64_t shell,
                           std::vector<int64_t>& cell,
                           std::vector<int64_t>& offset, Fn&& fn) const {
  const size_t d = center.size();
  cell.resize(d);
  const int64_t max_cell = static_cast<int64_t>(cells_per_dim_) - 1;
  // Odometer over offsets in [-shell, shell]^d keeping only cells with
  // Chebyshev cell-distance exactly `shell`.
  offset.assign(d, -shell);
  for (;;) {
    bool on_shell = shell == 0;
    bool in_range = true;
    for (size_t i = 0; i < d; ++i) {
      if (offset[i] == -shell || offset[i] == shell) on_shell = true;
      const int64_t c = center[i] + offset[i];
      if (c < 0 || c > max_cell) {
        in_range = false;
        break;
      }
      cell[i] = c;
    }
    if (on_shell && in_range) {
      auto it = buckets_.find(PackCell(cell));
      if (it != buckets_.end()) {
        fn(it->second, std::span<const int64_t>(cell));
      }
    }
    // Advance the odometer.
    size_t pos = 0;
    while (pos < d) {
      if (offset[pos] < shell) {
        ++offset[pos];
        break;
      }
      offset[pos] = -shell;
      ++pos;
    }
    if (pos == d) break;
  }
}

Status GridIndex::Query(std::span<const double> query, size_t k,
                        std::optional<uint32_t> exclude,
                        KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  const size_t d = query.size();
  std::vector<int64_t>& center = ctx.scratch.cell_a;
  CellOf(query, center);
  internal_index::KnnCollector collector(k, ctx);
  std::vector<double>& cell_lo = ctx.scratch.box_lo;
  std::vector<double>& cell_hi = ctx.scratch.box_hi;
  std::vector<double>& rank = ctx.scratch.rank;
  const double* raw = data_->raw().data();
  const uint32_t skip =
      exclude.has_value() ? *exclude : 0xffffffffu;

  // No cell can be farther than cells_per_dim_ - 1 from the (clamped)
  // center cell, so larger shells cannot contain any points. The collector
  // holds rank-space values throughout (squared distances for L2).
  const int64_t max_shell = static_cast<int64_t>(cells_per_dim_) - 1;
  QueryStats* stats = ctx.stats;
  if (stats != nullptr) ++stats->queries;
  for (int64_t shell = 0; shell <= max_shell; ++shell) {
    if (shell > 0) {
      // Everything on this shell and beyond lies outside the box of cells
      // with Chebyshev distance < shell; the gap from the query to that
      // box's nearest face is a lower bound on all remaining distances.
      // The bound originates in distance space, so compare through the
      // conservative (downward-widened) rank transform.
      double bound = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < d; ++i) {
        const double lo_face =
            box_lo_[i] +
            static_cast<double>(center[i] - (shell - 1)) * cell_width_[i];
        const double hi_face =
            box_lo_[i] +
            static_cast<double>(center[i] + shell) * cell_width_[i];
        const double gap =
            std::max(0.0, std::min(query[i] - lo_face, hi_face - query[i]));
        bound = std::min(bound, metric_->CoordinateDistance(i, gap));
      }
      if (PruneRankLowerBound(kern_.squared, bound) > collector.Tau()) break;
    }
    // Each enumerated shell is one "directory" expansion of the search.
    if (stats != nullptr) ++stats->node_visits;
    VisitShell(center, shell, ctx.scratch.cell_b, ctx.scratch.cell_c,
               [&](const std::vector<uint32_t>& bucket,
                   std::span<const int64_t> cell) {
                 CellBounds(cell, cell_lo, cell_hi);
                 if (metric_->MinRankToBox(query, cell_lo, cell_hi) >
                     collector.Tau()) {
                   if (stats != nullptr) ++stats->rank_prune_hits;
                   return;
                 }
                 if (stats != nullptr) {
                   ++stats->leaf_visits;
                   stats->distance_evals += bucket.size();
                 }
                 rank.resize(bucket.size());
                 kern_.rank_gather(kern_.ctx, query.data(), raw, bucket.data(),
                                   bucket.size(), d, collector.Tau(),
                                   rank.data());
                 for (size_t i = 0; i < bucket.size(); ++i) {
                   if (bucket[i] == skip) {
                     if (stats != nullptr) --stats->distance_evals;
                     continue;
                   }
                   collector.Offer(bucket[i], rank[i]);
                 }
               });
  }
  collector.TakeInto(ctx.scratch.out);
  internal_index::RanksToDistances(kern_, ctx.scratch.out);
  return Status::OK();
}

Status GridIndex::QueryRadius(std::span<const double> query, double radius,
                              std::optional<uint32_t> exclude,
                              KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (!(radius >= 0.0)) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  const size_t d = query.size();
  // Per-dimension cell range that can intersect the ball.
  std::vector<int64_t>& lo_cell = ctx.scratch.cell_a;
  std::vector<int64_t>& hi_cell = ctx.scratch.cell_b;
  lo_cell.resize(d);
  hi_cell.resize(d);
  const int64_t max_cell = static_cast<int64_t>(cells_per_dim_) - 1;
  for (size_t i = 0; i < d; ++i) {
    lo_cell[i] = std::clamp<int64_t>(
        static_cast<int64_t>(
            std::floor((query[i] - radius - box_lo_[i]) / cell_width_[i])),
        0, max_cell);
    hi_cell[i] = std::clamp<int64_t>(
        static_cast<int64_t>(
            std::floor((query[i] + radius - box_lo_[i]) / cell_width_[i])),
        0, max_cell);
  }

  std::vector<Neighbor>& result = ctx.scratch.out;
  result.clear();
  std::vector<int64_t>& cell = ctx.scratch.cell_c;
  cell.assign(lo_cell.begin(), lo_cell.end());
  std::vector<double>& cell_lo = ctx.scratch.box_lo;
  std::vector<double>& cell_hi = ctx.scratch.box_hi;
  std::vector<double>& rank = ctx.scratch.rank;
  const double* raw = data_->raw().data();
  const uint32_t skip = exclude.has_value() ? *exclude : 0xffffffffu;
  const double rank_hi = PruneRankUpperBound(kern_.squared, radius);
  QueryStats* stats = ctx.stats;
  if (stats != nullptr) ++stats->queries;
  for (;;) {
    auto it = buckets_.find(PackCell(cell));
    if (it != buckets_.end()) {
      CellBounds(cell, cell_lo, cell_hi);
      if (metric_->MinRankToBox(query, cell_lo, cell_hi) <= rank_hi) {
        const std::vector<uint32_t>& bucket = it->second;
        if (stats != nullptr) {
          ++stats->leaf_visits;
          stats->distance_evals += bucket.size();
        }
        rank.resize(bucket.size());
        kern_.rank_gather(kern_.ctx, query.data(), raw, bucket.data(),
                          bucket.size(), d, rank_hi, rank.data());
        for (size_t i = 0; i < bucket.size(); ++i) {
          if (bucket[i] == skip) {
            if (stats != nullptr) --stats->distance_evals;
            continue;
          }
          if (rank[i] > rank_hi) continue;
          const double dist = DistanceFromRank(kern_.squared, rank[i]);
          if (dist <= radius) result.push_back(Neighbor{bucket[i], dist});
        }
      } else if (stats != nullptr) {
        ++stats->rank_prune_hits;
      }
    }
    size_t pos = 0;
    while (pos < d) {
      if (cell[pos] < hi_cell[pos]) {
        ++cell[pos];
        break;
      }
      cell[pos] = lo_cell[pos];
      ++pos;
    }
    if (pos == d) break;
  }
  internal_index::SortNeighbors(result);
  return Status::OK();
}

}  // namespace lofkit
