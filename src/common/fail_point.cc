#include "common/fail_point.h"

#include <map>
#include <mutex>
#include <random>
#include <utility>

namespace lofkit {

namespace {

struct ArmedPoint {
  Status error;
  FailPointPolicy policy;
  uint64_t hits = 0;
  uint64_t fires = 0;
  std::mt19937_64 rng;
};

// Function-local statics so the registry is safe to use from other
// namespace-scope initializers and never needs a destructor ordering
// guarantee (the map is heap-allocated and intentionally leaked).
std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::map<std::string, ArmedPoint, std::less<>>& Registry() {
  static auto* points = new std::map<std::string, ArmedPoint, std::less<>>;
  return *points;
}

}  // namespace

std::atomic<uint64_t>& FailPoints::armed_count() {
  static std::atomic<uint64_t> count{0};
  return count;
}

void FailPoints::Arm(std::string_view name, Status error,
                     FailPointPolicy policy) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& registry = Registry();
  auto it = registry.find(name);
  if (it == registry.end()) {
    it = registry.emplace(std::string(name), ArmedPoint{}).first;
    armed_count().fetch_add(1, std::memory_order_relaxed);
  }
  it->second.error = std::move(error);
  it->second.policy = policy;
  it->second.hits = 0;
  it->second.fires = 0;
  it->second.rng.seed(policy.seed);
}

bool FailPoints::Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& registry = Registry();
  auto it = registry.find(name);
  if (it == registry.end()) return false;
  registry.erase(it);
  armed_count().fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void FailPoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& registry = Registry();
  armed_count().fetch_sub(registry.size(), std::memory_order_relaxed);
  registry.clear();
}

uint64_t FailPoints::HitCount(std::string_view name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.hits;
}

uint64_t FailPoints::FireCount(std::string_view name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.fires;
}

Status FailPoints::Check(std::string_view name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(name);
  if (it == Registry().end()) return Status::OK();
  ArmedPoint& point = it->second;
  ++point.hits;
  bool fire = false;
  switch (point.policy.kind) {
    case FailPointPolicy::Kind::kAlways:
      fire = true;
      break;
    case FailPointPolicy::Kind::kOnce:
      fire = point.fires == 0;
      break;
    case FailPointPolicy::Kind::kEveryNth:
      fire = point.hits % point.policy.n == 0;
      break;
    case FailPointPolicy::Kind::kProbability: {
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      fire = uniform(point.rng) < point.policy.probability;
      break;
    }
  }
  if (!fire) return Status::OK();
  ++point.fires;
  return point.error;
}

}  // namespace lofkit
