#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fail_point.h"
#include "common/string_util.h"

namespace lofkit {

Result<CsvTable> ParseCsv(const std::string& text,
                          const CsvReadOptions& options) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  bool header_consumed = !options.has_header;
  size_t expected_cols = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (options.max_line_bytes != 0 && line.size() > options.max_line_bytes) {
      return Status::InvalidArgument(
          StrFormat("line %zu is %zu bytes long, limit is %zu "
                    "(CsvReadOptions::max_line_bytes)",
                    line_number, line.size(), options.max_line_bytes));
    }
    if (line.find('\0') != std::string::npos) {
      // An embedded NUL would silently truncate the field inside the
      // C-string number parser; reject the whole line instead.
      return Status::InvalidArgument(
          StrFormat("line %zu contains an embedded NUL byte", line_number));
    }
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (options.allow_comments && trimmed.front() == '#') continue;
    std::vector<std::string> fields = Split(trimmed, options.separator);
    if (!header_consumed) {
      for (auto& f : fields) f = std::string(Trim(f));
      table.header = std::move(fields);
      expected_cols = table.header.size();
      header_consumed = true;
      continue;
    }
    if (expected_cols == 0) {
      expected_cols = fields.size();
    } else if (fields.size() != expected_cols) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", line_number,
                    fields.size(), expected_cols));
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto& field : fields) {
      Result<double> value = ParseDouble(field);
      if (!value.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu: %s", line_number,
                      value.status().message().c_str()));
      }
      row.push_back(*value);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvReadOptions& options) {
  LOFKIT_FAIL_POINT("csv.read");
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IoError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) {
    return Status::IoError("read failure on file: " + path);
  }
  return ParseCsv(buffer.str(), options);
}

std::string WriteCsv(const CsvTable& table, char separator) {
  std::string out;
  if (!table.header.empty()) {
    for (size_t i = 0; i < table.header.size(); ++i) {
      if (i > 0) out.push_back(separator);
      out += table.header[i];
    }
    out.push_back('\n');
  }
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(separator);
      out += StrFormat("%.17g", row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    char separator) {
  LOFKIT_FAIL_POINT("csv.write");
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  std::string text = WriteCsv(table, separator);
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) {
    return Status::IoError("write failure on file: " + path);
  }
  return Status::OK();
}

}  // namespace lofkit
