#include "common/status.h"

namespace lofkit {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace lofkit
