#ifndef LOFKIT_COMMON_CANCELLATION_H_
#define LOFKIT_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace lofkit {

namespace internal_cancellation {

/// Shared stop state between a StopSource and its StopTokens. The stop
/// cause is latched with a compare-exchange, so whichever event wins the
/// race (explicit cancel vs. deadline expiry) determines the Status code
/// every observer reports from then on — one run never mixes kCancelled
/// and kDeadlineExceeded.
struct StopState {
  enum Cause : uint8_t { kNone = 0, kCancelled = 1, kDeadlineExceeded = 2 };

  std::atomic<uint8_t> cause{kNone};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  void Latch(Cause c) {
    uint8_t expected = kNone;
    cause.compare_exchange_strong(expected, static_cast<uint8_t>(c),
                                  std::memory_order_relaxed);
  }
};

}  // namespace internal_cancellation

/// Observer half of a cancellation pair: a cheap, copyable handle workers
/// poll at chunk boundaries. A default-constructed token is empty — it can
/// never request a stop and every check is a null-pointer test — so APIs
/// can take `const StopToken& = {}` with zero cost for callers that do not
/// opt in.
///
/// The cheap check (stop_requested / status) is one relaxed atomic load.
/// Deadline expiry needs a monotonic-clock read, so it lives in the
/// separate CheckDeadline(); long-running loops poll the flag every
/// iteration and the deadline every few dozen iterations (see
/// kStopCheckStride in parallel.h).
class StopToken {
 public:
  StopToken() = default;

  /// True when a stop has been requested or a deadline expiry has already
  /// been observed (by anyone). One relaxed atomic load; no clock read.
  bool stop_requested() const {
    return state_ != nullptr &&
           state_->cause.load(std::memory_order_relaxed) !=
               internal_cancellation::StopState::kNone;
  }

  /// True when this token can ever request a stop.
  bool stop_possible() const { return state_ != nullptr; }

  /// OK, or the latched kCancelled / kDeadlineExceeded error. Flag check
  /// only — pair with CheckDeadline() for deadline observation.
  Status status() const {
    if (state_ == nullptr) return Status::OK();
    return StatusForCause(state_->cause.load(std::memory_order_relaxed));
  }

  /// Reads the monotonic clock once: when the deadline has passed, latches
  /// kDeadlineExceeded (first observer wins) and returns the error;
  /// otherwise falls back to status(). Call this at coarse boundaries.
  Status CheckDeadline() const {
    if (state_ == nullptr) return Status::OK();
    if (state_->has_deadline &&
        state_->cause.load(std::memory_order_relaxed) ==
            internal_cancellation::StopState::kNone &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      state_->Latch(internal_cancellation::StopState::kDeadlineExceeded);
    }
    return status();
  }

 private:
  friend class StopSource;
  explicit StopToken(
      std::shared_ptr<internal_cancellation::StopState> state)
      : state_(std::move(state)) {}

  static Status StatusForCause(uint8_t cause) {
    switch (cause) {
      case internal_cancellation::StopState::kCancelled:
        return Status::Cancelled("operation cancelled by the caller");
      case internal_cancellation::StopState::kDeadlineExceeded:
        return Status::DeadlineExceeded("operation deadline exceeded");
      default:
        return Status::OK();
    }
  }

  std::shared_ptr<internal_cancellation::StopState> state_;
};

/// Owner half of a cancellation pair: creates tokens and requests stops.
/// Modeled on std::stop_source, plus an optional monotonic-clock deadline
/// that tokens observe themselves — no timer thread is involved; an
/// expired deadline is noticed at the observers' next CheckDeadline().
class StopSource {
 public:
  /// A source with no deadline; stops only via RequestStop().
  StopSource()
      : state_(std::make_shared<internal_cancellation::StopState>()) {}

  /// A source whose tokens report kDeadlineExceeded once the monotonic
  /// clock passes `deadline`.
  static StopSource WithDeadline(
      std::chrono::steady_clock::time_point deadline) {
    StopSource source;
    source.state_->has_deadline = true;
    source.state_->deadline = deadline;
    return source;
  }

  /// A source whose deadline is `timeout` from now.
  static StopSource AfterTimeout(std::chrono::nanoseconds timeout) {
    return WithDeadline(std::chrono::steady_clock::now() + timeout);
  }

  /// Requests cancellation. Idempotent; loses to an already-latched
  /// deadline expiry (the first cause wins, keeping the reported code
  /// deterministic within a run).
  void RequestStop() const {
    state_->Latch(internal_cancellation::StopState::kCancelled);
  }

  /// A token observing this source.
  StopToken token() const { return StopToken(state_); }

 private:
  std::shared_ptr<internal_cancellation::StopState> state_;
};

}  // namespace lofkit

#endif  // LOFKIT_COMMON_CANCELLATION_H_
