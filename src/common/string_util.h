#ifndef LOFKIT_COMMON_STRING_UTIL_H_
#define LOFKIT_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lofkit {

/// Splits `input` on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> Split(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Parses a double, rejecting trailing garbage, empty input, and NaN text
/// produced by accident ("nan" itself is accepted: some CSV exports use it).
Result<double> ParseDouble(std::string_view input);

/// Parses a non-negative integer.
Result<uint64_t> ParseU64(std::string_view input);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Escapes `input` for embedding inside a JSON string literal: `"` and `\`
/// are backslash-escaped, the named control characters become \b \f \n \r
/// \t, and every other control byte (< 0x20) becomes \u00XX. Without the
/// control-character handling a newline or tab in a case name produces
/// invalid JSON that strict parsers reject.
std::string JsonEscape(std::string_view input);

}  // namespace lofkit

#endif  // LOFKIT_COMMON_STRING_UTIL_H_
