#ifndef LOFKIT_COMMON_FLAGS_H_
#define LOFKIT_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace lofkit {

/// Minimal command-line flag parser for the lofkit tools.
///
/// Supported syntax: `--name=value`, `--name value`, and for booleans
/// `--name` / `--no-name`. Everything that does not start with `--` is
/// collected as a positional argument. `--` ends flag parsing. Unknown
/// flags are an error (catching typos beats ignoring them).
class FlagParser {
 public:
  /// Registration; `help` is shown by Help(). Names must be unique.
  void AddString(const std::string& name, std::string default_value,
                 std::string help);
  void AddU64(const std::string& name, uint64_t default_value,
              std::string help);
  void AddDouble(const std::string& name, double default_value,
                 std::string help);
  void AddBool(const std::string& name, bool default_value, std::string help);

  /// Parses argv (excluding argv[0]). On error, no accessor may be used.
  Status Parse(int argc, const char* const* argv);

  /// Typed accessors; the flag must have been registered with the matching
  /// Add* or the process aborts (programming error, not user error).
  const std::string& GetString(const std::string& name) const;
  uint64_t GetU64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True when the user supplied the flag explicitly.
  bool IsSet(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing every flag with default and help string.
  std::string Help() const;

 private:
  enum class Type { kString, kU64, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;  // canonical textual form
    std::string default_value;
    std::string help;
    bool set = false;
  };

  void Add(const std::string& name, Type type, std::string default_value,
           std::string help);
  Status SetValue(const std::string& name, const std::string& value);
  const Flag& GetChecked(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace lofkit

#endif  // LOFKIT_COMMON_FLAGS_H_
