#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace lofkit {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      fields.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

Result<double> ParseDouble(std::string_view input) {
  std::string_view trimmed = Trim(input);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty string is not a number");
  }
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing garbage in number: '" + buf + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of double range: '" + buf + "'");
  }
  return value;
}

Result<uint64_t> ParseU64(std::string_view input) {
  std::string_view trimmed = Trim(input);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  if (trimmed[0] == '-') {
    return Status::InvalidArgument("negative value for unsigned field: '" +
                                   std::string(trimmed) + "'");
  }
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing garbage in integer: '" + buf + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + buf + "'");
  }
  return static_cast<uint64_t>(value);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string JsonEscape(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (char c : input) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace lofkit
