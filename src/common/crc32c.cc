#include "common/crc32c.h"

#include <array>

namespace lofkit {
namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

// Eight lookup tables for slice-by-8: table[0] is the classic byte-at-a-time
// table; table[k][b] is the CRC of byte b followed by k zero bytes, which
// lets the loop fold eight input bytes per iteration.
struct Tables {
  uint32_t t[8][256];
};

constexpr Tables MakeTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 8; ++k) {
      tables.t[k][i] =
          (tables.t[k - 1][i] >> 8) ^ tables.t[0][tables.t[k - 1][i] & 0xFFu];
    }
  }
  return tables;
}

constexpr Tables kTables = MakeTables();

inline uint32_t LoadLe32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Crc32c::Extend(uint32_t crc, const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Byte-at-a-time until the slice-by-8 loop can take over.
  while (size != 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
    --size;
  }
  while (size >= 8) {
    const uint32_t lo = LoadLe32(p) ^ crc;
    const uint32_t hi = LoadLe32(p + 4);
    crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][hi & 0xFFu] ^ kTables.t[2][(hi >> 8) & 0xFFu] ^
          kTables.t[1][(hi >> 16) & 0xFFu] ^ kTables.t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size != 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
    --size;
  }
  return ~crc;
}

}  // namespace lofkit
