#include "common/parallel.h"

namespace lofkit {

size_t ResolveThreadCount(size_t threads) {
  if (threads != 0) return threads;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<size_t>(hardware);
}

}  // namespace lofkit
