#include "common/flight_recorder.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace lofkit {

namespace {

// Geometric bucket upper bounds shared by every shard, identical in
// construction to MetricsRegistry's histogram layout so the merged view
// behaves like any other registry histogram. Computed once; std::array,
// so initialization allocates nothing even under the counting new hook.
using BoundsArray = std::array<double, QueryFlightRecorder::Shard::kBuckets>;

const BoundsArray& LatencyBounds() {
  static const BoundsArray bounds = [] {
    BoundsArray out{};
    const double lo = QueryFlightRecorder::kLatencyLoNs;
    const double ratio = QueryFlightRecorder::kLatencyHiNs / lo;
    for (size_t b = 0; b < out.size(); ++b) {
      out[b] = lo * std::pow(ratio, static_cast<double>(b + 1) /
                                        static_cast<double>(out.size()));
    }
    out.back() = QueryFlightRecorder::kLatencyHiNs;
    return out;
  }();
  return bounds;
}

void AppendNumber(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os.precision(17);
  os << v;
}

// Min-heap on wall_ns: front() is the fastest retained unit, the one a
// slower newcomer evicts.
bool SlowerThan(const QueryFlightRecorder::Record& a,
                const QueryFlightRecorder::Record& b) {
  return a.wall_ns > b.wall_ns;
}

void AppendRecordJson(std::ostringstream& os,
                      const QueryFlightRecorder::Record& rec) {
  os << "{\"site\": \"" << QueryFlightRecorder::SiteName(rec.site)
     << "\", \"engine\": \"" << JsonEscape(std::string(rec.engine))
     << "\", \"shard\": " << rec.shard << ", \"seq\": " << rec.seq
     << ", \"first_point\": " << rec.first_point
     << ", \"queries\": " << rec.queries << ", \"k\": " << rec.k
     << ", \"wall_ns\": " << rec.wall_ns
     << ", \"distance_evals\": " << rec.distance_evals
     << ", \"node_visits\": " << rec.node_visits
     << ", \"leaf_visits\": " << rec.leaf_visits << "}";
}

}  // namespace

std::string_view QueryFlightRecorder::SiteName(Site site) {
  switch (site) {
    case Site::kMaterialize:
      return "materialize";
    case Site::kSweep:
      return "sweep";
  }
  return "unknown";
}

QueryFlightRecorder::QueryFlightRecorder()
    : QueryFlightRecorder(Options{}) {}

QueryFlightRecorder::QueryFlightRecorder(Options options)
    : options_(options) {
  options_.ring_capacity = std::max<size_t>(options_.ring_capacity, 1);
  options_.top_k = std::max<size_t>(options_.top_k, 1);
  options_.sample_stride = std::max<uint64_t>(options_.sample_stride, 1);
}

void QueryFlightRecorder::PrepareShards(size_t count) {
  while (shards_.size() < count) {
    auto shard = std::make_unique<Shard>();
    shard->index_ = static_cast<uint32_t>(shards_.size());
    shard->stride_ = options_.sample_stride;
    shard->top_k_ = options_.top_k;
    shard->ring_.resize(options_.ring_capacity);
    shard->top_.reserve(options_.top_k);
    shards_.push_back(std::move(shard));
  }
}

void QueryFlightRecorder::Shard::Record(Site site, std::string_view engine,
                                        uint32_t first_point, uint32_t queries,
                                        uint32_t k, uint64_t wall_ns,
                                        const QueryStats& before,
                                        const QueryStats& after) {
  QueryFlightRecorder::Record rec;
  rec.seq = seq_;
  rec.wall_ns = wall_ns;
  rec.distance_evals = after.distance_evals - before.distance_evals;
  rec.node_visits = after.node_visits - before.node_visits;
  rec.leaf_visits = after.leaf_visits - before.leaf_visits;
  rec.engine = engine;
  rec.shard = index_;
  rec.first_point = first_point;
  rec.queries = std::max<uint32_t>(queries, 1);
  rec.k = k;
  rec.site = site;
  ++seq_;

  ring_[rec.seq % ring_.size()] = rec;

  if (top_.size() < top_k_) {
    top_.push_back(rec);
    std::push_heap(top_.begin(), top_.end(), SlowerThan);
  } else if (rec.wall_ns > top_.front().wall_ns) {
    std::pop_heap(top_.begin(), top_.end(), SlowerThan);
    top_.back() = rec;
    std::push_heap(top_.begin(), top_.end(), SlowerThan);
  }

  // Histogram observations are per-query so the two sites compare on one
  // axis: a 64-query batch contributes 64 observations of its amortized
  // per-query latency.
  SiteAccum& accum = sites_[static_cast<size_t>(site)];
  const double per_query_ns =
      static_cast<double>(wall_ns) / static_cast<double>(rec.queries);
  const BoundsArray& bounds = LatencyBounds();
  size_t slot;
  if (per_query_ns < QueryFlightRecorder::kLatencyLoNs) {
    slot = 0;
  } else if (per_query_ns > QueryFlightRecorder::kLatencyHiNs) {
    slot = accum.counts.size() - 1;
  } else {
    const auto it =
        std::lower_bound(bounds.begin(), bounds.end(), per_query_ns);
    slot = 1 + static_cast<size_t>(it - bounds.begin());
  }
  accum.counts[slot] += rec.queries;
  accum.sum_ns += static_cast<double>(wall_ns);
  accum.min_ns = std::min(accum.min_ns, per_query_ns);
  accum.max_ns = std::max(accum.max_ns, per_query_ns);
  accum.units += 1;
  accum.queries += rec.queries;
  if (accum.engine.empty()) accum.engine = engine;
}

QueryFlightRecorder::Report QueryFlightRecorder::Merge() const {
  Report report;
  report.options = options_;

  const BoundsArray& bounds = LatencyBounds();
  for (size_t s = 0; s < kSiteCount; ++s) {
    SiteReport site_report;
    site_report.site = static_cast<Site>(s);
    auto& hist = site_report.latency;
    hist.lo = kLatencyLoNs;
    hist.hi = kLatencyHiNs;
    hist.upper_bounds.assign(bounds.begin(), bounds.end());
    hist.counts.assign(bounds.size(), 0);
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    for (const auto& shard : shards_) {
      const Shard::SiteAccum& accum = shard->sites_[s];
      if (accum.units == 0) continue;
      hist.underflow += accum.counts.front();
      hist.overflow += accum.counts.back();
      for (size_t b = 0; b < hist.counts.size(); ++b) {
        hist.counts[b] += accum.counts[b + 1];
      }
      hist.sum += accum.sum_ns;
      min = std::min(min, accum.min_ns);
      max = std::max(max, accum.max_ns);
      site_report.sampled_units += accum.units;
      site_report.sampled_queries += accum.queries;
      if (site_report.engine.empty()) site_report.engine = accum.engine;
    }
    if (site_report.sampled_units == 0) continue;
    hist.total_count = hist.underflow + hist.overflow;
    for (uint64_t c : hist.counts) hist.total_count += c;
    hist.min = min;
    hist.max = max;
    hist.name = "latency." + std::string(SiteName(site_report.site)) + "." +
                std::string(site_report.engine) + ".query_ns";
    report.sites.push_back(std::move(site_report));
  }

  for (const auto& shard : shards_) {
    for (const Record& rec : shard->top_) report.slowest.push_back(rec);
  }
  std::sort(report.slowest.begin(), report.slowest.end(),
            [](const Record& a, const Record& b) {
              if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  if (report.slowest.size() > options_.top_k) {
    report.slowest.resize(options_.top_k);
  }

  for (const auto& shard : shards_) {
    const size_t size = shard->ring_.size();
    const uint64_t count = std::min<uint64_t>(shard->seq_, size);
    const uint64_t start = shard->seq_ - count;
    for (uint64_t i = start; i < shard->seq_; ++i) {
      report.recent.push_back(shard->ring_[i % size]);
    }
  }

  return report;
}

std::string QueryFlightRecorder::Report::ToJson() const {
  std::ostringstream os;
  os << "{\"config\": {\"ring_capacity\": " << options.ring_capacity
     << ", \"top_k\": " << options.top_k
     << ", \"sample_stride\": " << options.sample_stride << "},\n";
  os << " \"sites\": [";
  for (size_t i = 0; i < sites.size(); ++i) {
    const SiteReport& site = sites[i];
    if (i > 0) os << ",\n  ";
    os << "{\"site\": \"" << QueryFlightRecorder::SiteName(site.site)
       << "\", \"engine\": \"" << JsonEscape(std::string(site.engine))
       << "\", \"sampled_units\": " << site.sampled_units
       << ", \"sampled_queries\": " << site.sampled_queries
       << ", \"latency_ns\": {\"count\": " << site.latency.total_count
       << ", \"sum\": ";
    AppendNumber(os, site.latency.sum);
    os << ", \"min\": ";
    AppendNumber(os, site.latency.min);
    os << ", \"max\": ";
    AppendNumber(os, site.latency.max);
    os << ", \"p50\": ";
    AppendNumber(os, site.latency.Quantile(0.50));
    os << ", \"p95\": ";
    AppendNumber(os, site.latency.Quantile(0.95));
    os << ", \"p99\": ";
    AppendNumber(os, site.latency.Quantile(0.99));
    os << "}}";
  }
  os << "],\n \"slowest\": [";
  for (size_t i = 0; i < slowest.size(); ++i) {
    if (i > 0) os << ",\n  ";
    AppendRecordJson(os, slowest[i]);
  }
  os << "],\n \"recent\": [";
  for (size_t i = 0; i < recent.size(); ++i) {
    if (i > 0) os << ",\n  ";
    AppendRecordJson(os, recent[i]);
  }
  os << "]}\n";
  return os.str();
}

Status QueryFlightRecorder::Report::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToJson();
  out.close();
  if (!out) return Status::IoError("failed writing " + path);
  return Status::OK();
}

}  // namespace lofkit
