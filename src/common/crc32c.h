#ifndef LOFKIT_COMMON_CRC32C_H_
#define LOFKIT_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace lofkit {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected to 0x82F63B78) —
/// the checksum used by the container file format (container_file.h), and
/// the same variant used by RocksDB, LevelDB, and iSCSI. Software
/// slice-by-8 implementation: no ISA dependency, ~1 GB/s, deterministic
/// across platforms (which the committed bench baselines rely on).
///
/// Extend-style API so section checksums can be computed incrementally
/// while streaming a spill build to disk:
///
///     uint32_t crc = 0;
///     crc = Crc32c::Extend(crc, chunk1, n1);
///     crc = Crc32c::Extend(crc, chunk2, n2);   // == Value(chunk1+chunk2)
class Crc32c {
 public:
  /// Extends `crc` (the running checksum of everything hashed so far, 0 to
  /// start) with `size` more bytes.
  static uint32_t Extend(uint32_t crc, const void* data, size_t size);

  /// Checksum of one contiguous buffer.
  static uint32_t Value(const void* data, size_t size) {
    return Extend(0, data, size);
  }
};

}  // namespace lofkit

#endif  // LOFKIT_COMMON_CRC32C_H_
