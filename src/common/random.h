#ifndef LOFKIT_COMMON_RANDOM_H_
#define LOFKIT_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lofkit {

/// Deterministic pseudo-random number generator (xoshiro256**) with the
/// sampling helpers the workload generators need.
///
/// lofkit never uses std::mt19937 directly: distribution implementations are
/// not specified portably, and every experiment in the paper reproduction
/// must emit the same dataset for the same seed on every platform.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformU64(uint64_t n);

  /// Standard normal variate (Marsaglia polar method).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential variate with the given rate (lambda > 0).
  double Exponential(double lambda);

  /// Gamma(shape, 1) variate, shape > 0 (Marsaglia-Tsang).
  double Gamma(double shape);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// In-place Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace lofkit

#endif  // LOFKIT_COMMON_RANDOM_H_
