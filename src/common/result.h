#ifndef LOFKIT_COMMON_RESULT_H_
#define LOFKIT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace lofkit {

/// A value of type T or an error Status — the value-returning counterpart of
/// Status, in the spirit of arrow::Result / absl::StatusOr.
///
/// Invariant: exactly one of {value, error status} is held. Accessing the
/// value of an errored Result aborts in debug builds (assert) and is
/// undefined otherwise; check ok() first or use LOFKIT_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor): mirrors StatusOr.
      : value_(std::move(value)) {}

  /// Constructs an errored result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result is an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>), propagating the error or binding the
/// value to `lhs`. `lhs` may include a declaration, e.g.
///
///     LOFKIT_ASSIGN_OR_RETURN(auto neighbors, index.Query(q, k));
#define LOFKIT_ASSIGN_OR_RETURN(lhs, expr)                             \
  LOFKIT_ASSIGN_OR_RETURN_IMPL_(                                       \
      LOFKIT_RESULT_CONCAT_(_lofkit_result, __LINE__), lhs, expr)

#define LOFKIT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define LOFKIT_RESULT_CONCAT_(a, b) LOFKIT_RESULT_CONCAT_IMPL_(a, b)
#define LOFKIT_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace lofkit

#endif  // LOFKIT_COMMON_RESULT_H_
