#ifndef LOFKIT_COMMON_FLIGHT_RECORDER_H_
#define LOFKIT_COMMON_FLIGHT_RECORDER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"

namespace lofkit {

/// Per-query tail-latency capture for the kNN hot paths.
///
/// QueryStats answers "how much work" (the paper's page-access currency);
/// the flight recorder answers "how long, and which queries were slow".
/// Each worker owns a Shard and records sampled *timed units* — one
/// QueryBatch chunk on the materialize path, one re-query on the
/// substrate path — into a fixed-capacity ring buffer, a bounded heap of
/// the slowest units, and a per-site geometric latency histogram. All
/// storage is preallocated by PrepareShards(), so the record path is
/// allocation-free and lock-free (the same per-worker discipline as
/// QueryStats); the clock is read only around sampled units, so with a
/// stride > 1 the timing overhead amortizes away.
///
/// Merge() folds the shards into one deterministic Report: histograms sum
/// bucket-wise, and the slowest-unit list is ordered by (wall_ns desc,
/// shard asc, seq asc) — independent of which worker finished first.
class QueryFlightRecorder {
 public:
  /// Which pipeline call site timed the unit.
  enum class Site : uint8_t { kMaterialize = 0, kSweep = 1 };
  static constexpr size_t kSiteCount = 2;
  static std::string_view SiteName(Site site);

  struct Options {
    /// Most-recent sampled units retained per shard.
    size_t ring_capacity = 256;
    /// Slowest sampled units retained per shard (exact top-K per shard;
    /// the merged report keeps the global top-K of the union).
    size_t top_k = 32;
    /// Record every Nth unit (1 = every unit). Skipped units are not
    /// timed at all — no clock reads, no counter snapshots.
    uint64_t sample_stride = 1;
  };

  /// One sampled timed unit. `queries` is the number of kNN queries the
  /// unit answered (the batch size on the materialize path, 1 on the
  /// re-query path); histogram observations are per-query (wall_ns /
  /// queries, weighted by queries), while ring/top-K retention is
  /// per-unit. The engine name is a view of the engine's static
  /// identifier — never owned, never copied.
  struct Record {
    uint64_t seq = 0;  // shard-local sample number, from 0
    uint64_t wall_ns = 0;
    uint64_t distance_evals = 0;
    uint64_t node_visits = 0;
    uint64_t leaf_visits = 0;
    std::string_view engine;
    uint32_t shard = 0;
    uint32_t first_point = 0;
    uint32_t queries = 0;
    uint32_t k = 0;
    Site site = Site::kMaterialize;
  };

  /// One worker's capture state. Not thread-safe: one shard per worker,
  /// like KnnSearchContext. All methods are allocation-free after
  /// PrepareShards().
  class Shard {
   public:
    /// Stride gate; call once per unit and time the unit only on true.
    bool ShouldSample() {
      if (stride_ <= 1) return true;
      return (tick_++ % stride_) == 0;
    }

    /// Records one timed unit. `before`/`after` are counter snapshots
    /// straddling the unit; only their deltas are kept.
    void Record(Site site, std::string_view engine, uint32_t first_point,
                uint32_t queries, uint32_t k, uint64_t wall_ns,
                const QueryStats& before, const QueryStats& after);

    uint64_t sampled_units() const { return seq_; }

    /// Bucket count of the per-site latency histograms (geometric over
    /// [kLatencyLoNs, kLatencyHiNs], plus underflow/overflow slots).
    static constexpr size_t kBuckets = 48;

   private:
    friend class QueryFlightRecorder;

    // Per-site latency accumulation in fixed-size arrays so recording
    // never grows anything.
    struct SiteAccum {
      std::array<uint64_t, kBuckets + 2> counts{};
      double sum_ns = 0.0;
      double min_ns = std::numeric_limits<double>::infinity();
      double max_ns = -std::numeric_limits<double>::infinity();
      uint64_t units = 0;
      uint64_t queries = 0;
      std::string_view engine;
    };

    uint32_t index_ = 0;
    uint64_t stride_ = 1;
    uint64_t tick_ = 0;
    uint64_t seq_ = 0;    // sampled units recorded so far
    size_t top_k_ = 0;    // heap bound (reserve may round capacity up)
    // "QueryFlightRecorder::Record" in full: the bare name would resolve
    // to the Record() member function inside this class.
    std::vector<QueryFlightRecorder::Record> ring_;  // slot = seq % capacity
    std::vector<QueryFlightRecorder::Record> top_;   // min-heap by wall_ns
    std::array<SiteAccum, kSiteCount> sites_{};
  };

  QueryFlightRecorder();
  explicit QueryFlightRecorder(Options options);

  QueryFlightRecorder(const QueryFlightRecorder&) = delete;
  QueryFlightRecorder& operator=(const QueryFlightRecorder&) = delete;

  /// Ensures at least `count` shards exist, preallocating their rings and
  /// heaps. Idempotent; only ever grows. This is the only allocation site
  /// — call it before the parallel region.
  void PrepareShards(size_t count);

  /// Shard `i` (must be < shard_count()). Pointers remain valid until the
  /// recorder is destroyed; PrepareShards never invalidates them.
  Shard* shard(size_t i) { return shards_[i].get(); }
  size_t shard_count() const { return shards_.size(); }

  const Options& options() const { return options_; }

  /// Histogram bucket geometry of the per-site latency histograms.
  static constexpr double kLatencyLoNs = 256.0;
  static constexpr double kLatencyHiNs = 1e10;

  /// Merged per-site latency view, shaped like a registry histogram so it
  /// can splice straight into a metrics Snapshot (and reuse Quantile()).
  struct SiteReport {
    Site site = Site::kMaterialize;
    std::string_view engine;
    uint64_t sampled_units = 0;
    uint64_t sampled_queries = 0;
    MetricsRegistry::Snapshot::HistogramValue latency;  // per-query ns
  };

  struct Report {
    Options options;
    std::vector<SiteReport> sites;   // only sites that saw samples
    std::vector<Record> slowest;     // wall desc, shard asc, seq asc
    std::vector<Record> recent;      // shard asc, then oldest to newest

    /// Slow-query report: config, per-site latency summaries
    /// (count/sum/min/max/p50/p95/p99), the slowest units, and the
    /// recent-unit rings. Strict JSON.
    std::string ToJson() const;

    /// Writes ToJson() to `path`.
    Status WriteJson(const std::string& path) const;
  };

  /// Deterministic fold of all shards (call after the parallel region
  /// has joined). Does not consume the shards.
  Report Merge() const;

  /// Monotonic nanoseconds for timing units (steady_clock).
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lofkit

#endif  // LOFKIT_COMMON_FLIGHT_RECORDER_H_
