#ifndef LOFKIT_COMMON_STATUS_H_
#define LOFKIT_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace lofkit {

/// Machine-readable error category carried by a Status.
///
/// The set mirrors the categories used by database engines such as RocksDB
/// and Arrow: it is intentionally small, and detail lives in the message.
enum class StatusCode {
  kOk = 0,
  /// The caller passed an argument that can never be valid (wrong dimension,
  /// k == 0, negative percentage, ...).
  kInvalidArgument = 1,
  /// The requested entity does not exist (point index out of range, ...).
  kNotFound = 2,
  /// The operation is valid in general but not in the current state
  /// (querying an index before Build(), sweeping an unmaterialized range).
  kFailedPrecondition = 3,
  /// A numeric argument fell outside its documented domain.
  kOutOfRange = 4,
  /// An invariant inside lofkit broke. Always a bug in lofkit itself.
  kInternal = 5,
  /// I/O failure (CSV file unreadable, ...).
  kIoError = 6,
  /// The operation was cancelled by the caller (StopSource::RequestStop).
  kCancelled = 7,
  /// The operation ran past its caller-supplied deadline.
  kDeadlineExceeded = 8,
  /// The operation would exceed a caller-supplied resource budget
  /// (e.g. the materialization memory budget).
  kResourceExhausted = 9,
};

/// Returns the canonical lower-case name of a code, e.g. "invalid_argument".
std::string_view StatusCodeToString(StatusCode code);

/// Error-or-success result of an operation, the only error channel in the
/// lofkit public API (the library never throws).
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// code plus a human-readable message otherwise. Functions producing a value
/// return Result<T> (see result.h) instead.
///
/// Typical use:
///
///     LOFKIT_RETURN_IF_ERROR(index.Build(data, metric));
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor (or OK()) for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates an error Status out of the enclosing function.
#define LOFKIT_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::lofkit::Status _lofkit_status = (expr);        \
    if (!_lofkit_status.ok()) return _lofkit_status; \
  } while (0)

}  // namespace lofkit

#endif  // LOFKIT_COMMON_STATUS_H_
