#ifndef LOFKIT_COMMON_BENCH_REPORT_H_
#define LOFKIT_COMMON_BENCH_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace lofkit {

/// Machine-readable sidecar output for the benches: collects named rows of
/// numeric metrics and writes them as one JSON document
/// (`BENCH_<name>.json`) next to the human-readable stdout tables, so CI
/// and tracking scripts can diff runs without parsing printf output.
///
/// Format:
///   {"bench": "<name>",
///    "manifest": {"<key>": <string-or-number>, ...},
///    "rows": [{"case": "<case>", "metrics": {"<key>": <value>, ...}}, ...]}
///
/// The manifest records the run's conditions — compiler, hardware
/// concurrency, smoke mode, dataset parameters — so a diff tool
/// (lofkit_benchdiff) can warn when two sidecars were not produced under
/// comparable conditions. The constructor pre-fills the environment-derived
/// keys; benches add their own with SetManifest.
///
/// Non-finite metric values are serialized as null (JSON has no inf/nan).
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// Sets (or overwrites) one manifest entry. Insertion-ordered.
  void SetManifest(const std::string& key, const std::string& value);
  void SetManifest(const std::string& key, double value);

  /// Appends one row. Keys and case names are fully JSON-escaped on
  /// serialization (quotes, backslashes, and control characters such as
  /// newlines or tabs), so any string is safe here.
  void Add(const std::string& case_name,
           std::vector<std::pair<std::string, double>> metrics);

  /// Serializes the report to a JSON string.
  std::string ToJson() const;

  /// Writes ToJson() to `BENCH_<name>.json` in the current directory, or
  /// under $LOFKIT_BENCH_JSON_DIR when that is set.
  Status Write() const;

 private:
  struct Row {
    std::string case_name;
    std::vector<std::pair<std::string, double>> metrics;
  };

  /// One manifest entry: a string or a number, never both.
  struct ManifestEntry {
    std::string key;
    std::string str;
    double num = 0.0;
    bool is_string = false;
  };

  ManifestEntry& ManifestSlot(const std::string& key);

  std::string name_;
  std::vector<ManifestEntry> manifest_;
  std::vector<Row> rows_;
};

}  // namespace lofkit

#endif  // LOFKIT_COMMON_BENCH_REPORT_H_
