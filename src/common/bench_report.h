#ifndef LOFKIT_COMMON_BENCH_REPORT_H_
#define LOFKIT_COMMON_BENCH_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace lofkit {

/// Machine-readable sidecar output for the benches: collects named rows of
/// numeric metrics and writes them as one JSON document
/// (`BENCH_<name>.json`) next to the human-readable stdout tables, so CI
/// and tracking scripts can diff runs without parsing printf output.
///
/// Format:
///   {"bench": "<name>",
///    "rows": [{"case": "<case>", "metrics": {"<key>": <value>, ...}}, ...]}
///
/// Non-finite metric values are serialized as null (JSON has no inf/nan).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Appends one row. Keys and case names are fully JSON-escaped on
  /// serialization (quotes, backslashes, and control characters such as
  /// newlines or tabs), so any string is safe here.
  void Add(const std::string& case_name,
           std::vector<std::pair<std::string, double>> metrics);

  /// Serializes the report to a JSON string.
  std::string ToJson() const;

  /// Writes ToJson() to `BENCH_<name>.json` in the current directory, or
  /// under $LOFKIT_BENCH_JSON_DIR when that is set.
  Status Write() const;

 private:
  struct Row {
    std::string case_name;
    std::vector<std::pair<std::string, double>> metrics;
  };

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace lofkit

#endif  // LOFKIT_COMMON_BENCH_REPORT_H_
