#include "common/random.h"

#include <cassert>
#include <cmath>

namespace lofkit {

namespace {

// SplitMix64, used only to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 uniform mantissa bits in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::UniformU64(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (~uint64_t{0} - n + 1) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / lambda;
}

double Rng::Gamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape >= 1 and correct with the standard power-of-uniform
    // transformation.
    const double u = NextDouble();
    return Gamma(shape + 1.0) * std::pow(u <= 0.0 ? 1e-300 : u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Gaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace lofkit
