#ifndef LOFKIT_COMMON_PARALLEL_H_
#define LOFKIT_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/fail_point.h"
#include "common/status.h"

namespace lofkit {

/// Resolves a user-facing thread-count knob: 0 means "one worker per
/// hardware thread" (never less than 1); any other value passes through
/// unchanged. Every `threads` parameter in lofkit follows this convention.
size_t ResolveThreadCount(size_t threads);

/// How often a worker pays a monotonic-clock read for deadline expiry: the
/// cheap latched-flag check runs every index, the clock read every stride.
/// 32 keeps the overhead invisible for microsecond bodies while bounding
/// how far past a deadline a worker can run to one stride of work.
inline constexpr size_t kStopCheckStride = 32;

/// Runs body(worker, i) for every i in [0, n) sharded over `threads`
/// workers, where `worker` is the stable id in [0, resolved_threads) of the
/// worker executing index i — the hook per-worker state (e.g. a
/// KnnSearchContext per worker) needs to stay race-free without locks.
///
/// Chunking is deterministic and contiguous: worker t owns
/// [n*t/T, n*(t+1)/T), the same split for every run with the same (n, T).
/// `threads` is resolved via ResolveThreadCount and clamped to n; a resolved
/// count of 1 runs inline on the calling thread with no pool at all, so the
/// sequential path stays allocation- and synchronization-free.
///
/// `stop` is polled at every index boundary (latched-flag load) and its
/// deadline every kStopCheckStride indexes (clock read); an empty token
/// costs a null-pointer test. On a stop the other workers abort at their
/// next boundary, exactly like the error path.
///
/// `body` must return Status and be safe to invoke concurrently for
/// distinct i (the usual shape: read shared state, write only slot i and
/// worker-local state). On the first error the other workers stop at their
/// next index boundary (early abort) instead of running their chunks to
/// completion.
///
/// Error choice is deterministic, in this precedence order:
///   1. A body (or injected fail-point) error always beats a cancellation
///      or deadline stop, even when the two race — a worker that observes
///      the stop token records nothing, so it can never mask a real error.
///   2. Among body errors recorded by several workers, the one from the
///      lowest-index failing chunk wins: chunks are contiguous and
///      ascending in worker id, so the scan over worker ids below returns
///      the error of the lowest failing index that was actually reached.
///      (A failure a higher-index worker reported first can still suppress
///      a lower-index failure that the early abort prevented from running;
///      the returned error is always one some body actually produced.)
///   3. With no body error, a tripped stop token yields its latched
///      kCancelled / kDeadlineExceeded status.
///
/// Workers never see an index twice and the calling thread always
/// participates as worker 0. The "parallel.worker" fail point is planted
/// at every index boundary and injects through the body-error path.
template <typename Body>
Status ParallelForWorker(size_t n, size_t threads, const StopToken& stop,
                         const Body& body) {
  threads = std::min(ResolveThreadCount(threads), n);
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) {
      if (stop.stop_possible()) {
        LOFKIT_RETURN_IF_ERROR(i % kStopCheckStride == 0
                                   ? stop.CheckDeadline()
                                   : stop.status());
      }
      LOFKIT_FAIL_POINT("parallel.worker");
      LOFKIT_RETURN_IF_ERROR(body(size_t{0}, i));
    }
    return Status::OK();
  }

  std::atomic<bool> abort{false};
  std::vector<Status> worker_status(threads);
  auto worker = [&](size_t t) {
    const size_t begin = n * t / threads;
    const size_t end = n * (t + 1) / threads;
    for (size_t i = begin; i < end; ++i) {
      if (abort.load(std::memory_order_relaxed)) return;
      if (stop.stop_possible()) {
        Status stopped = (i - begin) % kStopCheckStride == 0
                             ? stop.CheckDeadline()
                             : stop.status();
        if (!stopped.ok()) {
          // Deliberately not recorded in worker_status: a cancellation
          // must never outrank a real body error (precedence rule 1);
          // the caller re-reads the latched token status after the join.
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
      Status status;
      if (__builtin_expect(FailPoints::AnyArmed(), 0)) {
        status = FailPoints::Check("parallel.worker");
      }
      if (status.ok()) status = body(t, i);
      if (!status.ok()) {
        worker_status[t] = std::move(status);
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (size_t t = 1; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  worker(0);
  for (std::thread& t : pool) t.join();
  for (Status& status : worker_status) {
    if (!status.ok()) return std::move(status);
  }
  // No body error anywhere: a tripped token is the only remaining cause.
  return stop.status();
}

/// Token-free form: identical semantics with a never-stopping token.
template <typename Body>
Status ParallelForWorker(size_t n, size_t threads, const Body& body) {
  return ParallelForWorker(n, threads, StopToken(), body);
}

/// Runs body(i) for every i in [0, n) sharded over `threads` workers — the
/// worker-id-free convenience form of ParallelForWorker; all semantics
/// (chunking, resolution, early abort, stop polling, error choice) are
/// identical.
template <typename Body>
Status ParallelFor(size_t n, size_t threads, const StopToken& stop,
                   const Body& body) {
  return ParallelForWorker(
      n, threads, stop,
      [&body](size_t /*worker*/, size_t i) { return body(i); });
}

template <typename Body>
Status ParallelFor(size_t n, size_t threads, const Body& body) {
  return ParallelFor(n, threads, StopToken(), body);
}

}  // namespace lofkit

#endif  // LOFKIT_COMMON_PARALLEL_H_
