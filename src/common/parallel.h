#ifndef LOFKIT_COMMON_PARALLEL_H_
#define LOFKIT_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace lofkit {

/// Resolves a user-facing thread-count knob: 0 means "one worker per
/// hardware thread" (never less than 1); any other value passes through
/// unchanged. Every `threads` parameter in lofkit follows this convention.
size_t ResolveThreadCount(size_t threads);

/// Runs body(worker, i) for every i in [0, n) sharded over `threads`
/// workers, where `worker` is the stable id in [0, resolved_threads) of the
/// worker executing index i — the hook per-worker state (e.g. a
/// KnnSearchContext per worker) needs to stay race-free without locks.
///
/// Chunking is deterministic and contiguous: worker t owns
/// [n*t/T, n*(t+1)/T), the same split for every run with the same (n, T).
/// `threads` is resolved via ResolveThreadCount and clamped to n; a resolved
/// count of 1 runs inline on the calling thread with no pool at all, so the
/// sequential path stays allocation- and synchronization-free.
///
/// `body` must return Status and be safe to invoke concurrently for
/// distinct i (the usual shape: read shared state, write only slot i and
/// worker-local state). On the first error the other workers stop at their
/// next index boundary (early abort) instead of running their chunks to
/// completion, and an error some body actually returned is propagated — the
/// lowest-numbered worker's when several fail concurrently before noticing
/// the abort flag, which makes the returned error fully deterministic
/// whenever at most one index can fail. Workers never see an index twice
/// and the calling thread always participates as worker 0.
template <typename Body>
Status ParallelForWorker(size_t n, size_t threads, const Body& body) {
  threads = std::min(ResolveThreadCount(threads), n);
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) {
      LOFKIT_RETURN_IF_ERROR(body(size_t{0}, i));
    }
    return Status::OK();
  }

  std::atomic<bool> abort{false};
  std::vector<Status> worker_status(threads);
  auto worker = [&](size_t t) {
    const size_t begin = n * t / threads;
    const size_t end = n * (t + 1) / threads;
    for (size_t i = begin; i < end; ++i) {
      if (abort.load(std::memory_order_relaxed)) return;
      Status status = body(t, i);
      if (!status.ok()) {
        worker_status[t] = std::move(status);
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (size_t t = 1; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  worker(0);
  for (std::thread& t : pool) t.join();
  for (Status& status : worker_status) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

/// Runs body(i) for every i in [0, n) sharded over `threads` workers — the
/// worker-id-free convenience form of ParallelForWorker; all semantics
/// (chunking, resolution, early abort, error choice) are identical.
template <typename Body>
Status ParallelFor(size_t n, size_t threads, const Body& body) {
  return ParallelForWorker(
      n, threads, [&body](size_t /*worker*/, size_t i) { return body(i); });
}

}  // namespace lofkit

#endif  // LOFKIT_COMMON_PARALLEL_H_
