#ifndef LOFKIT_COMMON_LOGGING_H_
#define LOFKIT_COMMON_LOGGING_H_

#include <sstream>

namespace lofkit {

/// Severity for the minimal logger used by long-running experiment drivers.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo). Thread-compatible:
/// call before spawning work.
void SetLogLevel(LogLevel level);

/// Current minimum level.
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line; emits to stderr on destruction when its level
/// passes the filter.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace lofkit

/// Usage: LOFKIT_LOG(Info) << "built index over " << n << " points";
#define LOFKIT_LOG(severity)                                        \
  ::lofkit::internal_logging::LogMessage(                           \
      ::lofkit::LogLevel::k##severity, __FILE__, __LINE__)          \
      .stream()

#endif  // LOFKIT_COMMON_LOGGING_H_
