#ifndef LOFKIT_COMMON_LOGGING_H_
#define LOFKIT_COMMON_LOGGING_H_

#include <cstddef>
#include <sstream>

namespace lofkit {

/// Severity for the minimal logger used by long-running experiment drivers.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo). Thread-safe: the
/// level is an atomic, so it may be changed while workers are logging (each
/// message observes either the old or the new level, never a torn value).
void SetLogLevel(LogLevel level);

/// Current minimum level.
LogLevel GetLogLevel();

namespace internal_logging {

/// Receives fully formatted log lines (including the trailing newline).
/// Installed for tests; must be safe to call from multiple threads.
using LogSink = void (*)(const char* data, size_t size);

/// Replaces the output destination; nullptr restores the default, which
/// emits each line with one write() to stderr so lines from parallel
/// workers never interleave mid-line. Returns the previously installed
/// sink.
LogSink SetLogSinkForTest(LogSink sink);

/// Stream-style log line; emits on destruction when its level passes the
/// filter. Each message is flushed as a single write so concurrent workers
/// produce whole lines, never interleaved fragments.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace lofkit

/// Usage: LOFKIT_LOG(Info) << "built index over " << n << " points";
#define LOFKIT_LOG(severity)                                        \
  ::lofkit::internal_logging::LogMessage(                           \
      ::lofkit::LogLevel::k##severity, __FILE__, __LINE__)          \
      .stream()

#endif  // LOFKIT_COMMON_LOGGING_H_
