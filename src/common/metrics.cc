#include "common/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/string_util.h"

namespace lofkit {

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TraceRecorder::TraceRecorder()
    : origin_(std::chrono::steady_clock::now()) {}

double TraceRecorder::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin_)
      .count();
}

void TraceRecorder::AddSpan(const std::string& name, uint32_t tid,
                            double start_seconds, double end_seconds) {
  Event event;
  event.name = name;
  event.tid = tid;
  event.start_us = start_seconds * 1e6;
  event.dur_us = std::max(0.0, (end_seconds - start_seconds) * 1e6);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceRecorder::AddInstant(const std::string& name, uint32_t tid,
                               double at_seconds) {
  Event event;
  event.name = name;
  event.tid = tid;
  event.start_us = at_seconds * 1e6;
  event.dur_us = -1.0;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

namespace {

void AppendJsonNumber(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os.precision(17);
  os << v;
}

}  // namespace

std::string TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (i > 0) os << ",\n ";
    os << "{\"name\": \"" << JsonEscape(e.name)
       << "\", \"cat\": \"lofkit\", \"ph\": \""
       << (e.dur_us < 0.0 ? 'i' : 'X') << "\", \"pid\": 1, \"tid\": "
       << e.tid << ", \"ts\": ";
    AppendJsonNumber(os, e.start_us);
    if (e.dur_us >= 0.0) {
      os << ", \"dur\": ";
      AppendJsonNumber(os, e.dur_us);
    } else {
      os << ", \"s\": \"t\"";
    }
    os << "}";
  }
  os << "], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToJson();
  out.close();
  if (!out) return Status::IoError("failed writing " + path);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::MetricsRegistry(size_t shards) {
  shards_.resize(std::max<size_t>(shards, 1));
}

MetricsRegistry::MetricId MetricsRegistry::Register(const std::string& name,
                                                    Kind kind) {
  for (MetricId id = 0; id < definitions_.size(); ++id) {
    if (definitions_[id].name == name) {
      assert(definitions_[id].kind == kind &&
             "metric re-registered under a different kind");
      return id;
    }
  }
  Definition def;
  def.name = name;
  def.kind = kind;
  const MetricId id = static_cast<MetricId>(definitions_.size());
  switch (kind) {
    case Kind::kCounter:
      def.slot = static_cast<uint32_t>(shards_[0].counters.size());
      for (Shard& shard : shards_) shard.counters.push_back(0);
      break;
    case Kind::kGauge:
      def.slot = static_cast<uint32_t>(shards_[0].gauges.size());
      for (Shard& shard : shards_) {
        shard.gauges.push_back(0.0);
        shard.gauge_set.push_back(0);
      }
      break;
    case Kind::kHistogram:
      def.slot = static_cast<uint32_t>(histogram_layouts_.size());
      break;
  }
  definitions_.push_back(std::move(def));
  return id;
}

MetricsRegistry::MetricId MetricsRegistry::Counter(const std::string& name) {
  return Register(name, Kind::kCounter);
}

MetricsRegistry::MetricId MetricsRegistry::Gauge(const std::string& name) {
  return Register(name, Kind::kGauge);
}

MetricsRegistry::MetricId MetricsRegistry::Histogram(const std::string& name,
                                                     double lo, double hi,
                                                     size_t buckets) {
  assert(lo > 0.0 && hi > lo && buckets >= 1 && buckets <= 512 &&
         "histogram bounds must satisfy 0 < lo < hi, 1 <= buckets <= 512");
  const MetricId id = Register(name, Kind::kHistogram);
  if (definitions_[id].slot < histogram_layouts_.size()) {
    return id;  // pre-existing histogram: keep its original layout
  }
  HistogramLayout layout;
  layout.lo = lo;
  layout.hi = hi;
  layout.upper_bounds.resize(buckets);
  const double ratio = hi / lo;
  for (size_t b = 0; b < buckets; ++b) {
    layout.upper_bounds[b] =
        lo * std::pow(ratio, static_cast<double>(b + 1) /
                                 static_cast<double>(buckets));
  }
  layout.upper_bounds.back() = hi;  // no rounding drift at the top edge
  histogram_layouts_.push_back(std::move(layout));
  for (Shard& shard : shards_) {
    shard.hist_counts.emplace_back(buckets + 2, 0);
    shard.hist_sum.push_back(0.0);
    shard.hist_min.push_back(std::numeric_limits<double>::infinity());
    shard.hist_max.push_back(-std::numeric_limits<double>::infinity());
  }
  return id;
}

const MetricsRegistry::Definition& MetricsRegistry::Checked(MetricId id,
                                                            Kind kind) const {
  assert(id < definitions_.size() && "unknown metric id");
  const Definition& def = definitions_[id];
  assert(def.kind == kind && "metric used with the wrong kind");
  (void)kind;
  return def;
}

void MetricsRegistry::Add(MetricId id, uint64_t delta, size_t shard) {
  const Definition& def = Checked(id, Kind::kCounter);
  shards_[shard].counters[def.slot] += delta;
}

void MetricsRegistry::Set(MetricId id, double value, size_t shard) {
  const Definition& def = Checked(id, Kind::kGauge);
  shards_[shard].gauges[def.slot] = value;
  shards_[shard].gauge_set[def.slot] = 1;
}

void MetricsRegistry::Record(MetricId id, double value, size_t shard) {
  const Definition& def = Checked(id, Kind::kHistogram);
  const HistogramLayout& layout = histogram_layouts_[def.slot];
  if (std::isnan(value)) return;  // NaN has no bucket; drop it
  Shard& s = shards_[shard];
  std::vector<uint64_t>& counts = s.hist_counts[def.slot];
  // counts[0] is underflow (< lo), counts[last] is overflow (> hi);
  // bucket b in between covers (prev_bound, upper_bounds[b-1]] with lo as
  // the closed lower edge of the first bucket.
  size_t slot;
  if (value < layout.lo) {
    slot = 0;
  } else if (value > layout.hi) {
    slot = counts.size() - 1;
  } else {
    const auto it = std::lower_bound(layout.upper_bounds.begin(),
                                     layout.upper_bounds.end(), value);
    slot = 1 + static_cast<size_t>(it - layout.upper_bounds.begin());
  }
  ++counts[slot];
  s.hist_sum[def.slot] += value;
  s.hist_min[def.slot] = std::min(s.hist_min[def.slot], value);
  s.hist_max[def.slot] = std::max(s.hist_max[def.slot], value);
}

void MetricsRegistry::AddQueryStats(const std::string& prefix,
                                    const QueryStats& stats, size_t shard) {
  Add(Counter(prefix + ".queries"), stats.queries, shard);
  Add(Counter(prefix + ".distance_evals"), stats.distance_evals, shard);
  Add(Counter(prefix + ".rank_prune_hits"), stats.rank_prune_hits, shard);
  Add(Counter(prefix + ".node_visits"), stats.node_visits, shard);
  Add(Counter(prefix + ".leaf_visits"), stats.leaf_visits, shard);
  Add(Counter(prefix + ".heap_pushes"), stats.heap_pushes, shard);
  Add(Counter(prefix + ".va_refinements"), stats.va_refinements, shard);
  Add(Counter(prefix + ".checks_used"), stats.checks_used, shard);
}

MetricsRegistry::Snapshot MetricsRegistry::Aggregate() const {
  Snapshot snapshot;
  for (const Definition& def : definitions_) {
    switch (def.kind) {
      case Kind::kCounter: {
        Snapshot::CounterValue value;
        value.name = def.name;
        for (const Shard& shard : shards_) {
          value.value += shard.counters[def.slot];
        }
        snapshot.counters.push_back(std::move(value));
        break;
      }
      case Kind::kGauge: {
        Snapshot::GaugeValue value;
        value.name = def.name;
        for (const Shard& shard : shards_) {
          if (shard.gauge_set[def.slot]) {
            value.value = shard.gauges[def.slot];
            value.set = true;
          }
        }
        snapshot.gauges.push_back(std::move(value));
        break;
      }
      case Kind::kHistogram: {
        const HistogramLayout& layout = histogram_layouts_[def.slot];
        Snapshot::HistogramValue value;
        value.name = def.name;
        value.lo = layout.lo;
        value.hi = layout.hi;
        value.upper_bounds = layout.upper_bounds;
        value.counts.assign(layout.upper_bounds.size(), 0);
        double min = std::numeric_limits<double>::infinity();
        double max = -std::numeric_limits<double>::infinity();
        for (const Shard& shard : shards_) {
          const std::vector<uint64_t>& counts = shard.hist_counts[def.slot];
          value.underflow += counts.front();
          value.overflow += counts.back();
          for (size_t b = 0; b < value.counts.size(); ++b) {
            value.counts[b] += counts[b + 1];
          }
          value.sum += shard.hist_sum[def.slot];
          min = std::min(min, shard.hist_min[def.slot]);
          max = std::max(max, shard.hist_max[def.slot]);
        }
        value.total_count = value.underflow + value.overflow;
        for (uint64_t c : value.counts) value.total_count += c;
        const bool empty = value.total_count == 0;
        value.min = empty ? std::numeric_limits<double>::quiet_NaN() : min;
        value.max = empty ? std::numeric_limits<double>::quiet_NaN() : max;
        snapshot.histograms.push_back(std::move(value));
        break;
      }
    }
  }
  return snapshot;
}

double MetricsRegistry::Snapshot::HistogramValue::Quantile(double q) const {
  if (total_count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(1.0, std::max(0.0, q));
  // Fractional rank of the target observation in the sorted sample; the
  // cumulative bucket walk below finds the bucket containing it and
  // interpolates linearly inside that bucket's edges.
  const double target = q * static_cast<double>(total_count);
  double cum = static_cast<double>(underflow);
  if (target <= cum) return min;  // underflow bucket has no lower edge
  double lower_edge = lo;
  for (size_t b = 0; b < counts.size(); ++b) {
    const double upper_edge = upper_bounds[b];
    if (counts[b] > 0) {
      const double next = cum + static_cast<double>(counts[b]);
      if (target <= next) {
        const double frac = (target - cum) / static_cast<double>(counts[b]);
        const double estimate = lower_edge + frac * (upper_edge - lower_edge);
        // The exact envelope keeps single-valued data exact and estimates
        // inside the observed range even at the extreme percentiles.
        return std::min(max, std::max(min, estimate));
      }
      cum = next;
    }
    lower_edge = upper_edge;
  }
  return max;  // target falls in the overflow bucket
}

std::string MetricsRegistry::Snapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << JsonEscape(counters[i].name) << "\": "
       << counters[i].value;
  }
  os << "},\n \"gauges\": {";
  bool first = true;
  for (const GaugeValue& gauge : gauges) {
    if (!gauge.set) continue;
    if (!first) os << ", ";
    first = false;
    os << "\"" << JsonEscape(gauge.name) << "\": ";
    AppendJsonNumber(os, gauge.value);
  }
  os << "},\n \"histograms\": {";
  for (size_t h = 0; h < histograms.size(); ++h) {
    const HistogramValue& hist = histograms[h];
    if (h > 0) os << ",\n  ";
    os << "\"" << JsonEscape(hist.name) << "\": {\"lo\": ";
    AppendJsonNumber(os, hist.lo);
    os << ", \"hi\": ";
    AppendJsonNumber(os, hist.hi);
    os << ", \"count\": " << hist.total_count << ", \"sum\": ";
    AppendJsonNumber(os, hist.sum);
    if (hist.total_count > 0) {
      os << ", \"min\": ";
      AppendJsonNumber(os, hist.min);
      os << ", \"max\": ";
      AppendJsonNumber(os, hist.max);
      os << ", \"p50\": ";
      AppendJsonNumber(os, hist.Quantile(0.50));
      os << ", \"p95\": ";
      AppendJsonNumber(os, hist.Quantile(0.95));
      os << ", \"p99\": ";
      AppendJsonNumber(os, hist.Quantile(0.99));
    }
    os << ", \"underflow\": " << hist.underflow
       << ", \"overflow\": " << hist.overflow << ", \"buckets\": [";
    for (size_t b = 0; b < hist.counts.size(); ++b) {
      if (b > 0) os << ", ";
      os << "{\"le\": ";
      AppendJsonNumber(os, hist.upper_bounds[b]);
      os << ", \"count\": " << hist.counts[b] << "}";
    }
    os << "]}";
  }
  os << "}}\n";
  return os.str();
}

namespace {

// OpenMetrics metric names admit [a-zA-Z0-9_:] only; everything else
// (the registry's dotted names in particular) maps to '_'.
std::string OpenMetricsName(const std::string& name) {
  std::string out = "lofkit_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// OpenMetrics spells non-finite values NaN/+Inf/-Inf, unlike JSON.
void AppendOpenMetricsNumber(std::ostringstream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    os.precision(17);
    os << v;
  }
}

}  // namespace

std::string MetricsRegistry::Snapshot::ToOpenMetrics() const {
  std::ostringstream os;
  for (const CounterValue& counter : counters) {
    const std::string name = OpenMetricsName(counter.name);
    os << "# TYPE " << name << " counter\n";
    os << name << "_total " << counter.value << "\n";
  }
  for (const GaugeValue& gauge : gauges) {
    if (!gauge.set) continue;
    const std::string name = OpenMetricsName(gauge.name);
    os << "# TYPE " << name << " gauge\n";
    os << name << " ";
    AppendOpenMetricsNumber(os, gauge.value);
    os << "\n";
  }
  for (const HistogramValue& hist : histograms) {
    const std::string name = OpenMetricsName(hist.name);
    os << "# TYPE " << name << " histogram\n";
    // Cumulative buckets: underflow observations (< lo) are below every
    // upper bound, so they seed the running total.
    uint64_t cum = hist.underflow;
    for (size_t b = 0; b < hist.counts.size(); ++b) {
      cum += hist.counts[b];
      os << name << "_bucket{le=\"";
      AppendOpenMetricsNumber(os, hist.upper_bounds[b]);
      os << "\"} " << cum << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << hist.total_count << "\n";
    os << name << "_count " << hist.total_count << "\n";
    os << name << "_sum ";
    AppendOpenMetricsNumber(os, hist.sum);
    os << "\n";
  }
  os << "# EOF\n";
  return os.str();
}

uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // already bytes
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // reported in KiB
#endif
#else
  return 0;
#endif
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << Aggregate().ToJson();
  out.close();
  if (!out) return Status::IoError("failed writing " + path);
  return Status::OK();
}

}  // namespace lofkit
