#include "common/mmap_file.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fail_point.h"

namespace lofkit {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  LOFKIT_FAIL_POINT("container.mmap");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat '" + path +
                           "': " + std::strerror(err));
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ != 0) {
    void* mapped =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IoError("cannot mmap '" + path +
                             "': " + std::strerror(err));
    }
    file.data_ = static_cast<const std::byte*>(mapped);
  }
  // The mapping keeps the pages alive; the descriptor is no longer needed.
  ::close(fd);
  return file;
}

void MmapFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
}

}  // namespace lofkit
