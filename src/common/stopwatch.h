#ifndef LOFKIT_COMMON_STOPWATCH_H_
#define LOFKIT_COMMON_STOPWATCH_H_

#include <chrono>

namespace lofkit {

/// Wall-clock timer for the performance experiments (Figures 10 and 11).
///
/// The paper reports wall-clock times including CPU and I/O; steady_clock is
/// the closest portable equivalent that is immune to system clock updates.
class Stopwatch {
 public:
  /// Starts timing immediately.
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lofkit

#endif  // LOFKIT_COMMON_STOPWATCH_H_
