#ifndef LOFKIT_COMMON_CONTAINER_FILE_H_
#define LOFKIT_COMMON_CONTAINER_FILE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/mmap_file.h"
#include "common/result.h"
#include "common/status.h"

namespace lofkit {

/// Versioned single-file container format — the durable artifact behind
/// `NeighborhoodMaterializer::SaveToFile` and the VA-file signature table
/// (ROADMAP item 3; the paper's step 2 runs entirely from the file-resident
/// materialization M, so M's file deserves a real format).
///
/// Layout (all integers little-endian, serialized field by field — no
/// struct dumps, so the format is independent of compiler padding):
///
///     [ header   | 64 bytes, CRC-sealed                    ]
///     [ section payloads, each start aligned to 64 bytes   ]
///     [ section table | 48 bytes per section, CRC'd        ]
///     [ footer   | final 64 bytes of the file, CRC-sealed  ]
///
/// Integrity model:
///  - The footer is always the last 64 bytes and records the total file
///    size, so truncation at *any* byte is detected: either the file is
///    too short to hold header + footer, or the bytes now at the tail
///    fail the footer magic/CRC, or the recorded size disagrees with the
///    actual size.
///  - The footer CRC seals the section-table location; the table CRC
///    seals every section's {name, offset, size, payload CRC}; each
///    payload CRC (CRC-32C, crc32c.h) seals the payload bytes. A single
///    flipped bit anywhere is caught by exactly one of these seals.
///  - Writers produce the file at `path + ".tmp"` and publish it with
///    fsync + atomic rename, so a crash mid-save can never leave a torn
///    file at the final path — the old file (or no file) survives.
///
/// Error taxonomy: OS-level failures (open/write/fsync/rename/mmap) are
/// kIoError; malformed or corrupt content (bad magic, bad CRC, truncation,
/// out-of-bounds section) is kInvalidArgument with a "corrupt container"
/// message. Fail points "container.write", "container.fsync",
/// "container.rename", "container.mmap", and "container.verify" cover
/// every I/O boundary for the fault matrix.
namespace container {

/// Size of the fixed file header (sealed by its trailing CRC).
inline constexpr size_t kHeaderSize = 64;

/// Size of one serialized section-table entry.
inline constexpr size_t kSectionEntrySize = 48;

/// Size of the fixed file footer (the file's final bytes).
inline constexpr size_t kFooterSize = 64;

/// Section payload starts are aligned to this many bytes so mmap'ed
/// payloads can be served as typed arrays (16-byte Neighbor records,
/// 8-byte offsets) without misalignment.
inline constexpr size_t kSectionAlignment = 64;

/// Longest section name the table can record.
inline constexpr size_t kMaxSectionName = 24;

}  // namespace container

/// Streams one container file to disk crash-safely.
///
/// Usage:
///
///     LOFKIT_ASSIGN_OR_RETURN(auto writer,
///                             ContainerWriter::Create(path, type, ver));
///     LOFKIT_RETURN_IF_ERROR(writer.AddSection("meta", bytes, n));
///     LOFKIT_RETURN_IF_ERROR(writer.BeginSection("neighbors"));
///     LOFKIT_RETURN_IF_ERROR(writer.Append(chunk, chunk_bytes));  // repeat
///     LOFKIT_RETURN_IF_ERROR(writer.EndSection());
///     LOFKIT_RETURN_IF_ERROR(writer.Finish());  // fsync + atomic rename
///
/// Everything is written to `path + ".tmp"`; only Finish publishes the
/// final path. Destroying an unfinished writer (or any mid-write error)
/// abandons and unlinks the tmp file, leaving whatever was previously at
/// `path` untouched. Section checksums are extended incrementally per
/// Append, so a spill build can stream gigabytes without buffering them.
///
/// Move-only; not thread-safe (one writer per file).
class ContainerWriter {
 public:
  /// Opens `path + ".tmp"` for writing and writes the container header.
  static Result<ContainerWriter> Create(const std::string& path,
                                        uint32_t file_type,
                                        uint32_t file_version);

  ContainerWriter(ContainerWriter&& other) noexcept;
  ContainerWriter& operator=(ContainerWriter&& other) noexcept;
  ContainerWriter(const ContainerWriter&) = delete;
  ContainerWriter& operator=(const ContainerWriter&) = delete;
  ~ContainerWriter();

  /// Starts a streamed section. `name` must be non-empty, at most
  /// kMaxSectionName bytes, and unique within the file.
  Status BeginSection(std::string_view name);

  /// Appends payload bytes to the section opened by BeginSection.
  Status Append(const void* data, size_t size);

  /// Seals the streamed section (records its size and CRC in the table).
  Status EndSection();

  /// Convenience: BeginSection + Append + EndSection.
  Status AddSection(std::string_view name, const void* data, size_t size);

  /// Writes the section table and footer, fsyncs, and atomically renames
  /// the tmp file onto `path`. After Finish (success or failure) the
  /// writer is spent. On failure the tmp file is removed and the previous
  /// contents of `path`, if any, are untouched.
  Status Finish();

  /// Closes and unlinks the tmp file without publishing. Idempotent; the
  /// destructor calls this for unfinished writers.
  void Abandon();

  /// Bytes written so far (header + payloads + padding).
  uint64_t bytes_written() const { return offset_; }

 private:
  ContainerWriter() = default;

  Status WriteRaw(const void* data, size_t size);
  Status PadTo(size_t alignment);

  struct PendingSection {
    std::string name;
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
  };

  int fd_ = -1;
  std::string final_path_;
  std::string tmp_path_;
  uint64_t offset_ = 0;
  std::vector<PendingSection> sections_;
  bool in_section_ = false;
  bool finished_ = false;
  bool broken_ = false;
};

/// Memory-mapped read side of the container format.
///
/// Open validates the structural seals (header, footer, section table);
/// payload checksums are verified lazily on first Section() access and
/// cached, so a huge mmap'ed section costs one sequential pass over its
/// pages the first time it is served and nothing afterwards. Returned
/// spans point into the mapping and stay valid for the reader's lifetime
/// (payload starts are kSectionAlignment-aligned, so they can be
/// reinterpreted as arrays of 8/16-byte records).
///
/// Move-only. Lazy verification mutates a per-section cache, so concurrent
/// first accesses from multiple threads are not supported — verify from
/// one thread (or call VerifyAllSections once) before sharing.
class ContainerReader {
 public:
  /// Maps `path` and validates header, footer, and section table.
  static Result<ContainerReader> Open(const std::string& path);

  ContainerReader(ContainerReader&&) noexcept = default;
  ContainerReader& operator=(ContainerReader&&) noexcept = default;
  ContainerReader(const ContainerReader&) = delete;
  ContainerReader& operator=(const ContainerReader&) = delete;
  ~ContainerReader() = default;

  uint32_t file_type() const { return file_type_; }
  uint32_t file_version() const { return file_version_; }
  size_t section_count() const { return sections_.size(); }

  bool HasSection(std::string_view name) const;

  /// Returns the payload of section `name`, verifying its CRC on first
  /// access. kNotFound when absent; kInvalidArgument on checksum mismatch.
  Result<std::span<const std::byte>> Section(std::string_view name) const;

  /// Verifies every section's checksum now (one sequential pass).
  Status VerifyAllSections() const;

 private:
  ContainerReader() = default;

  Status VerifySection(size_t i) const;

  struct SectionInfo {
    std::string name;
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
  };

  MmapFile file_;
  std::string path_;
  std::vector<SectionInfo> sections_;
  mutable std::vector<uint8_t> verified_;
  uint32_t file_type_ = 0;
  uint32_t file_version_ = 0;
};

}  // namespace lofkit

#endif  // LOFKIT_COMMON_CONTAINER_FILE_H_
