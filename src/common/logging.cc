#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>

namespace lofkit {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = stream_.str();
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal_logging
}  // namespace lofkit
