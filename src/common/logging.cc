#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace lofkit {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<internal_logging::LogSink> g_sink{nullptr};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

// One write() syscall per line: POSIX guarantees writes to the same file
// description are not interleaved with each other, so parallel workers
// emit whole lines. stdio fwrite would also lock the FILE, but routing
// around the FILE buffer makes the no-mid-line-interleave property
// independent of any buffering mode the host process set on stderr.
void WriteWholeLine(const char* data, size_t size) {
#ifdef _WIN32
  std::fwrite(data, 1, size, stderr);
  std::fflush(stderr);
#else
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(2, data + written, size - written);
    if (n <= 0) return;  // stderr gone; nothing sensible left to do
    written += static_cast<size_t>(n);
  }
#endif
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogSink SetLogSinkForTest(LogSink sink) {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = stream_.str();
  line.push_back('\n');
  if (LogSink sink = g_sink.load(std::memory_order_acquire);
      sink != nullptr) {
    sink(line.data(), line.size());
    return;
  }
  WriteWholeLine(line.data(), line.size());
}

}  // namespace internal_logging
}  // namespace lofkit
