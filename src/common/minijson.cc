#include "common/minijson.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace lofkit {

namespace {

constexpr size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    LOFKIT_RETURN_IF_ERROR(ParseValue(value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing content after document");
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at byte %zu", message.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue& out, size_t depth) {
    if (depth > kMaxDepth) return Error("nesting deeper than the cap");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of document");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return ParseString(out.str);
      case 't':
        LOFKIT_RETURN_IF_ERROR(ParseLiteral("true"));
        out.kind = JsonValue::Kind::kBool;
        out.b = true;
        return Status::OK();
      case 'f':
        LOFKIT_RETURN_IF_ERROR(ParseLiteral("false"));
        out.kind = JsonValue::Kind::kBool;
        out.b = false;
        return Status::OK();
      case 'n':
        LOFKIT_RETURN_IF_ERROR(ParseLiteral("null"));
        out.kind = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseObject(JsonValue& out, size_t depth) {
    ++pos_;  // '{'
    out.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      LOFKIT_RETURN_IF_ERROR(ParseString(key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      LOFKIT_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue& out, size_t depth) {
    ++pos_;  // '['
    out.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      LOFKIT_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseHex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    out = 0;
    for (size_t i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A') + 10;
      } else {
        return Error("invalid hex digit in \\u escape");
      }
      out = (out << 4) | digit;
    }
    pos_ += 4;
    return Status::OK();
  }

  static void AppendUtf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          LOFKIT_RETURN_IF_ERROR(ParseHex4(cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            LOFKIT_RETURN_IF_ERROR(ParseHex4(low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(JsonValue& out) {
    const size_t start = pos_;
    Consume('-');
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // The span is already validated, so strtod can only disagree about
    // range; the copy guarantees the terminator strtod needs.
    const std::string span(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(span.c_str(), &end);
    if (end != span.c_str() + span.size()) return Error("invalid number");
    out.kind = JsonValue::Kind::kNumber;
    out.num = value;  // out-of-range parses to +-inf, kept as-is
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path + " for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("failed reading " + path);
  return ParseJson(buffer.str());
}

}  // namespace lofkit
