#ifndef LOFKIT_COMMON_METRICS_PUBLISHER_H_
#define LOFKIT_COMMON_METRICS_PUBLISHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace lofkit {

/// Periodically renders a text snapshot and writes it to a file — the
/// scrape surface for long runs: point a file-based scraper (or `watch
/// cat`) at the path and it sees a fresh OpenMetrics heartbeat every
/// interval, even while the pipeline is mid-phase.
///
/// The render callback runs on the publisher's own thread and must be
/// safe to call concurrently with the pipeline (read relaxed atomics,
/// take snapshots — never touch per-worker shards mid-flight). Writes go
/// to `<path>.tmp` and are renamed into place, so a reader never
/// observes a partially written snapshot. Stop() (or destruction)
/// publishes one final snapshot so the file always ends at the terminal
/// state.
class SnapshotPublisher {
 public:
  using RenderFn = std::function<std::string()>;

  SnapshotPublisher(std::string path, std::chrono::milliseconds interval,
                    RenderFn render);
  ~SnapshotPublisher();

  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  /// Stops the background thread and publishes the final snapshot.
  /// Idempotent.
  void Stop();

  /// Snapshots written so far (including the final one after Stop()).
  uint64_t publish_count() const;

 private:
  void Loop();
  void PublishOnce();

  std::string path_;
  std::chrono::milliseconds interval_;
  RenderFn render_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  uint64_t publish_count_ = 0;
  std::thread thread_;
};

}  // namespace lofkit

#endif  // LOFKIT_COMMON_METRICS_PUBLISHER_H_
