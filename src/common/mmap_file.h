#ifndef LOFKIT_COMMON_MMAP_FILE_H_
#define LOFKIT_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace lofkit {

/// Read-only memory mapping of a whole file (the zero-copy read path for
/// container files: a mapped materialization M serves `View()` straight
/// from the page cache instead of materializing `flat_` in RAM).
///
/// Movable, not copyable; the mapping is released on destruction. An
/// empty file maps to {data() == nullptr, size() == 0}, which is valid.
///
/// The "container.mmap" fail point fires inside Open, so the fault matrix
/// can exercise mapping failure without exhausting address space.
class MmapFile {
 public:
  /// Maps `path` read-only. IoError when the file cannot be opened,
  /// stat'ed, or mapped.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile() { Reset(); }

  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// First mapped byte (nullptr when nothing is mapped).
  const std::byte* data() const { return data_; }

  /// Mapped length in bytes.
  size_t size() const { return size_; }

 private:
  void Reset();

  const std::byte* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace lofkit

#endif  // LOFKIT_COMMON_MMAP_FILE_H_
