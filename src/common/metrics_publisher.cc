#include "common/metrics_publisher.h"

#include <cstdio>
#include <fstream>
#include <utility>

namespace lofkit {

SnapshotPublisher::SnapshotPublisher(std::string path,
                                     std::chrono::milliseconds interval,
                                     RenderFn render)
    : path_(std::move(path)),
      interval_(interval.count() > 0 ? interval
                                     : std::chrono::milliseconds(1000)),
      render_(std::move(render)) {
  thread_ = std::thread([this] { Loop(); });
}

SnapshotPublisher::~SnapshotPublisher() { Stop(); }

void SnapshotPublisher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  PublishOnce();
}

uint64_t SnapshotPublisher::publish_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return publish_count_;
}

void SnapshotPublisher::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) break;
    lock.unlock();
    PublishOnce();
    lock.lock();
  }
}

void SnapshotPublisher::PublishOnce() {
  const std::string text = render_();
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return;  // heartbeat is best-effort; never fail the run
    out << text;
    if (!out) return;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++publish_count_;
}

}  // namespace lofkit
