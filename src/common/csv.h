#ifndef LOFKIT_COMMON_CSV_H_
#define LOFKIT_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace lofkit {

/// A parsed numeric CSV file: optional header names plus a rectangular
/// matrix of doubles. All rows must have the same number of fields.
struct CsvTable {
  std::vector<std::string> header;        ///< Empty when the file had none.
  std::vector<std::vector<double>> rows;  ///< Row-major values.

  size_t num_columns() const {
    return rows.empty() ? header.size() : rows.front().size();
  }
};

/// Options controlling CSV parsing.
struct CsvReadOptions {
  char separator = ',';
  /// When true, the first non-empty line is treated as column names.
  bool has_header = false;
  /// When true, lines starting with '#' are skipped.
  bool allow_comments = true;
  /// Longest accepted physical line, in bytes (0 = unlimited). Hostile or
  /// corrupt inputs (a newline-free multi-gigabyte blob, a binary file fed
  /// to the CSV path) fail with a clean InvalidArgument instead of
  /// ballooning memory on a single std::getline.
  size_t max_line_bytes = 1 << 20;
};

/// Parses CSV text already in memory. Returns InvalidArgument on ragged rows
/// or non-numeric fields (with the offending 1-based line number).
Result<CsvTable> ParseCsv(const std::string& text,
                          const CsvReadOptions& options = {});

/// Reads and parses a CSV file. Returns IoError when the file is unreadable.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvReadOptions& options = {});

/// Serializes a table (header optional) back to CSV text with full double
/// precision (round-trips through ParseCsv).
std::string WriteCsv(const CsvTable& table, char separator = ',');

/// Writes CSV text to a file, overwriting it. Returns IoError on failure.
Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    char separator = ',');

}  // namespace lofkit

#endif  // LOFKIT_COMMON_CSV_H_
