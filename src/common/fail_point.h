#ifndef LOFKIT_COMMON_FAIL_POINT_H_
#define LOFKIT_COMMON_FAIL_POINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace lofkit {

/// When an armed fail point fires, relative to the hits it observes.
///
/// Policies are evaluated per hit while the point is armed; hits are
/// counted even when the policy decides not to fire, so tests can assert a
/// planted point was actually reached.
struct FailPointPolicy {
  enum class Kind : uint8_t {
    kAlways,       ///< Fires on every hit.
    kOnce,         ///< Fires on the first hit only, then goes quiet.
    kEveryNth,     ///< Fires on hits n, 2n, 3n, ... (1-based).
    kProbability,  ///< Fires per hit with probability p from a seeded RNG.
  };

  Kind kind = Kind::kAlways;
  uint64_t n = 1;            ///< Period for kEveryNth.
  double probability = 1.0;  ///< Fire probability for kProbability.
  uint64_t seed = 0;         ///< RNG seed for kProbability (deterministic).

  static FailPointPolicy Always() { return {}; }
  static FailPointPolicy Once() { return {Kind::kOnce, 1, 1.0, 0}; }
  static FailPointPolicy EveryNth(uint64_t n) {
    return {Kind::kEveryNth, n == 0 ? 1 : n, 1.0, 0};
  }
  static FailPointPolicy WithProbability(double p, uint64_t seed) {
    return {Kind::kProbability, 1, p, seed};
  }
};

/// A RocksDB-SyncPoint-style fault-injection registry.
///
/// Production code plants named points with LOFKIT_FAIL_POINT("name");
/// tests arm a point with an error Status and a firing policy, run the
/// pipeline, and assert the injected error surfaces at the public API.
/// Unarmed (the production state), a planted point costs exactly one
/// relaxed atomic load — no branch into the registry, no allocation, no
/// synchronization — so planting points in hot loops is free in practice.
///
/// All registry mutations and the armed-point slow path take one global
/// mutex; fail points are a test instrument, not a production code path,
/// so contention while armed is acceptable. Thread-safe throughout.
class FailPoints {
 public:
  /// Arms `name` to inject `error` per `policy`. Re-arming an armed point
  /// replaces its error, policy, and counters. `error` must not be OK.
  static void Arm(std::string_view name, Status error,
                  FailPointPolicy policy = FailPointPolicy::Always());

  /// Disarms one point. Returns false when it was not armed.
  static bool Disarm(std::string_view name);

  /// Disarms everything (test teardown safety net).
  static void DisarmAll();

  /// True when at least one point is armed anywhere. This is the planted
  /// fast-path guard: a single relaxed atomic load.
  static bool AnyArmed() {
    return armed_count().load(std::memory_order_relaxed) != 0;
  }

  /// Times the armed point `name` was evaluated (0 when never armed or
  /// since its last Arm). Counts every hit, fired or not.
  static uint64_t HitCount(std::string_view name);

  /// Times the armed point `name` actually injected its error.
  static uint64_t FireCount(std::string_view name);

  /// Slow path behind LOFKIT_FAIL_POINT: evaluates the policy of `name`
  /// and returns the injected error when it fires, OK otherwise (also OK
  /// when `name` is not armed).
  static Status Check(std::string_view name);

 private:
  static std::atomic<uint64_t>& armed_count();
};

/// Arms a fail point for the current scope and disarms it on destruction —
/// the idiomatic way to use fail points in a test body.
class ScopedFailPoint {
 public:
  ScopedFailPoint(std::string_view name, Status error,
                  FailPointPolicy policy = FailPointPolicy::Always())
      : name_(name) {
    FailPoints::Arm(name_, std::move(error), policy);
  }
  ~ScopedFailPoint() { FailPoints::Disarm(name_); }

  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

  uint64_t hit_count() const { return FailPoints::HitCount(name_); }
  uint64_t fire_count() const { return FailPoints::FireCount(name_); }

 private:
  std::string name_;
};

}  // namespace lofkit

/// Plants a named fault-injection point. When the registry has any armed
/// point the slow path consults it and propagates the injected Status out
/// of the enclosing function (which must return Status or Result<T>);
/// unarmed, this is a single relaxed atomic load.
#define LOFKIT_FAIL_POINT(name)                                         \
  do {                                                                  \
    if (__builtin_expect(::lofkit::FailPoints::AnyArmed(), 0)) {        \
      ::lofkit::Status _lofkit_fp = ::lofkit::FailPoints::Check(name);  \
      if (!_lofkit_fp.ok()) return _lofkit_fp;                          \
    }                                                                   \
  } while (0)

#endif  // LOFKIT_COMMON_FAIL_POINT_H_
