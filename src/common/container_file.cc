#include "common/container_file.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc32c.h"
#include "common/fail_point.h"

namespace lofkit {
namespace {

using container::kFooterSize;
using container::kHeaderSize;
using container::kMaxSectionName;
using container::kSectionAlignment;
using container::kSectionEntrySize;

constexpr char kHeaderMagic[8] = {'L', 'F', 'K', 'C', 'O', 'N', 'T', '1'};
constexpr char kFooterMagic[8] = {'L', 'F', 'K', 'F', 'O', 'O', 'T', '1'};
constexpr uint32_t kContainerVersion = 1;

// Field-by-field little-endian serialization into a byte buffer, so the
// on-disk layout never depends on host struct padding. The repo targets
// little-endian hosts (the SIMD kernels already assume x86-64), so these
// are memcpys; the helpers keep every offset explicit and auditable.
void PutU32(unsigned char* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(unsigned char* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Header layout (kHeaderSize = 64):
//   [0,8)   magic "LFKCONT1"
//   [8,12)  container format version
//   [12,16) file type (application id, e.g. materialization vs VA-file)
//   [16,20) file version (application-level payload version)
//   [20,24) section count (0 in the streamed header; authoritative count
//           lives in the footer, written after the sections are known)
//   [24,60) reserved, zero
//   [60,64) CRC-32C of bytes [0,60)
void SerializeHeader(unsigned char (&buf)[kHeaderSize], uint32_t file_type,
                     uint32_t file_version) {
  std::memset(buf, 0, kHeaderSize);
  std::memcpy(buf, kHeaderMagic, 8);
  PutU32(buf + 8, kContainerVersion);
  PutU32(buf + 12, file_type);
  PutU32(buf + 16, file_version);
  PutU32(buf + 20, 0);
  PutU32(buf + 60, Crc32c::Value(buf, 60));
}

// Section-table entry layout (kSectionEntrySize = 48):
//   [0,24)  name, zero-padded
//   [24,32) payload offset
//   [32,40) payload size in bytes
//   [40,44) payload CRC-32C
//   [44,48) reserved, zero
void SerializeEntry(unsigned char* p, const std::string& name,
                    uint64_t offset, uint64_t size, uint32_t crc) {
  std::memset(p, 0, kSectionEntrySize);
  std::memcpy(p, name.data(), std::min(name.size(), kMaxSectionName));
  PutU64(p + 24, offset);
  PutU64(p + 32, size);
  PutU32(p + 40, crc);
}

// Footer layout (kFooterSize = 64, always the file's final bytes):
//   [0,8)   magic "LFKFOOT1"
//   [8,16)  section-table offset
//   [16,24) section-table size in bytes
//   [24,28) section count
//   [28,32) CRC-32C of the serialized section table
//   [32,40) total file size including this footer
//   [40,60) reserved, zero
//   [60,64) CRC-32C of bytes [0,60)
void SerializeFooter(unsigned char (&buf)[kFooterSize], uint64_t table_offset,
                     uint64_t table_size, uint32_t section_count,
                     uint32_t table_crc, uint64_t file_size) {
  std::memset(buf, 0, kFooterSize);
  std::memcpy(buf, kFooterMagic, 8);
  PutU64(buf + 8, table_offset);
  PutU64(buf + 16, table_size);
  PutU32(buf + 24, section_count);
  PutU32(buf + 28, table_crc);
  PutU64(buf + 32, file_size);
  PutU32(buf + 60, Crc32c::Value(buf, 60));
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("corrupt container '" + path + "': " + what);
}

}  // namespace

// ---------------------------------------------------------------------------
// ContainerWriter
// ---------------------------------------------------------------------------

Result<ContainerWriter> ContainerWriter::Create(const std::string& path,
                                                uint32_t file_type,
                                                uint32_t file_version) {
  ContainerWriter writer;
  writer.final_path_ = path;
  writer.tmp_path_ = path + ".tmp";
  writer.fd_ = ::open(writer.tmp_path_.c_str(),
                      O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (writer.fd_ < 0) {
    return Status::IoError("cannot create '" + writer.tmp_path_ +
                           "': " + std::strerror(errno));
  }
  unsigned char header[kHeaderSize];
  SerializeHeader(header, file_type, file_version);
  LOFKIT_RETURN_IF_ERROR(writer.WriteRaw(header, kHeaderSize));
  return writer;
}

ContainerWriter::ContainerWriter(ContainerWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      final_path_(std::move(other.final_path_)),
      tmp_path_(std::move(other.tmp_path_)),
      offset_(other.offset_),
      sections_(std::move(other.sections_)),
      in_section_(other.in_section_),
      finished_(std::exchange(other.finished_, true)),
      broken_(other.broken_) {
  other.tmp_path_.clear();
}

ContainerWriter& ContainerWriter::operator=(ContainerWriter&& other) noexcept {
  if (this != &other) {
    Abandon();
    fd_ = std::exchange(other.fd_, -1);
    final_path_ = std::move(other.final_path_);
    tmp_path_ = std::move(other.tmp_path_);
    offset_ = other.offset_;
    sections_ = std::move(other.sections_);
    in_section_ = other.in_section_;
    finished_ = std::exchange(other.finished_, true);
    broken_ = other.broken_;
    other.tmp_path_.clear();
  }
  return *this;
}

ContainerWriter::~ContainerWriter() { Abandon(); }

void ContainerWriter::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!finished_ && !tmp_path_.empty()) {
    ::unlink(tmp_path_.c_str());
  }
  finished_ = true;
}

Status ContainerWriter::WriteRaw(const void* data, size_t size) {
  LOFKIT_FAIL_POINT("container.write");
  if (fd_ < 0 || broken_) {
    return Status::FailedPrecondition("container writer is spent");
  }
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd_, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      broken_ = true;
      return Status::IoError("write to '" + tmp_path_ +
                             "' failed: " + std::strerror(errno));
    }
    p += n;
    size -= static_cast<size_t>(n);
    offset_ += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

Status ContainerWriter::PadTo(size_t alignment) {
  static const char kZeros[kSectionAlignment] = {};
  const uint64_t rem = offset_ % alignment;
  if (rem == 0) return Status::OK();
  return WriteRaw(kZeros, alignment - rem);
}

Status ContainerWriter::BeginSection(std::string_view name) {
  if (finished_ || broken_) {
    return Status::FailedPrecondition("container writer is spent");
  }
  if (in_section_) {
    return Status::FailedPrecondition(
        "BeginSection while section '" + sections_.back().name +
        "' is still open");
  }
  if (name.empty() || name.size() > kMaxSectionName) {
    return Status::InvalidArgument(
        "container section name must be 1.." +
        std::to_string(kMaxSectionName) + " bytes");
  }
  for (const PendingSection& s : sections_) {
    if (s.name == name) {
      return Status::InvalidArgument("duplicate container section '" +
                                     std::string(name) + "'");
    }
  }
  LOFKIT_RETURN_IF_ERROR(PadTo(kSectionAlignment));
  PendingSection section;
  section.name = std::string(name);
  section.offset = offset_;
  sections_.push_back(std::move(section));
  in_section_ = true;
  return Status::OK();
}

Status ContainerWriter::Append(const void* data, size_t size) {
  if (!in_section_) {
    return Status::FailedPrecondition("Append outside BeginSection");
  }
  LOFKIT_RETURN_IF_ERROR(WriteRaw(data, size));
  PendingSection& section = sections_.back();
  section.size += size;
  section.crc = Crc32c::Extend(section.crc, data, size);
  return Status::OK();
}

Status ContainerWriter::EndSection() {
  if (!in_section_) {
    return Status::FailedPrecondition("EndSection outside BeginSection");
  }
  in_section_ = false;
  return Status::OK();
}

Status ContainerWriter::AddSection(std::string_view name, const void* data,
                                   size_t size) {
  LOFKIT_RETURN_IF_ERROR(BeginSection(name));
  LOFKIT_RETURN_IF_ERROR(Append(data, size));
  return EndSection();
}

Status ContainerWriter::Finish() {
  if (finished_ || broken_) {
    return Status::FailedPrecondition("container writer is spent");
  }
  if (in_section_) {
    return Status::FailedPrecondition("Finish with section '" +
                                      sections_.back().name + "' still open");
  }
  LOFKIT_RETURN_IF_ERROR(PadTo(8));

  std::vector<unsigned char> table(sections_.size() * kSectionEntrySize);
  for (size_t i = 0; i < sections_.size(); ++i) {
    const PendingSection& s = sections_[i];
    SerializeEntry(table.data() + i * kSectionEntrySize, s.name, s.offset,
                   s.size, s.crc);
  }
  const uint64_t table_offset = offset_;
  LOFKIT_RETURN_IF_ERROR(WriteRaw(table.data(), table.size()));

  unsigned char footer[kFooterSize];
  SerializeFooter(footer, table_offset, table.size(),
                  static_cast<uint32_t>(sections_.size()),
                  Crc32c::Value(table.data(), table.size()),
                  offset_ + kFooterSize);
  LOFKIT_RETURN_IF_ERROR(WriteRaw(footer, kFooterSize));

  LOFKIT_FAIL_POINT("container.fsync");
  if (::fsync(fd_) != 0) {
    broken_ = true;
    return Status::IoError("fsync of '" + tmp_path_ +
                           "' failed: " + std::strerror(errno));
  }
  ::close(fd_);
  fd_ = -1;

  LOFKIT_FAIL_POINT("container.rename");
  if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    broken_ = true;
    return Status::IoError("rename '" + tmp_path_ + "' -> '" + final_path_ +
                           "' failed: " + std::strerror(errno));
  }
  finished_ = true;

  // Best-effort directory fsync so the rename itself is durable; failure
  // here cannot tear the file (the data is already safe), so it is not an
  // error the caller can act on.
  const size_t slash = final_path_.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : final_path_.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ContainerReader
// ---------------------------------------------------------------------------

Result<ContainerReader> ContainerReader::Open(const std::string& path) {
  ContainerReader reader;
  reader.path_ = path;
  LOFKIT_ASSIGN_OR_RETURN(reader.file_, MmapFile::Open(path));
  const size_t file_size = reader.file_.size();
  const unsigned char* base =
      reinterpret_cast<const unsigned char*>(reader.file_.data());

  if (file_size < kHeaderSize + kFooterSize) {
    return Corrupt(path, "file is smaller than header + footer (" +
                             std::to_string(file_size) + " bytes)");
  }

  // Footer first: it is the seal that survives only if the file was
  // published completely, so every truncation diagnosis starts here.
  const unsigned char* footer = base + file_size - kFooterSize;
  if (std::memcmp(footer, kFooterMagic, 8) != 0) {
    return Corrupt(path, "bad footer magic (torn or truncated write)");
  }
  if (GetU32(footer + 60) != Crc32c::Value(footer, 60)) {
    return Corrupt(path, "footer checksum mismatch");
  }
  const uint64_t recorded_size = GetU64(footer + 32);
  if (recorded_size != file_size) {
    return Corrupt(path, "footer records " + std::to_string(recorded_size) +
                             " bytes but the file has " +
                             std::to_string(file_size));
  }

  const uint64_t table_offset = GetU64(footer + 8);
  const uint64_t table_size = GetU64(footer + 16);
  const uint32_t section_count = GetU32(footer + 24);
  if (table_size != uint64_t{section_count} * kSectionEntrySize) {
    return Corrupt(path, "section-table size disagrees with section count");
  }
  if (table_offset < kHeaderSize || table_offset > file_size - kFooterSize ||
      table_size > file_size - kFooterSize - table_offset) {
    return Corrupt(path, "section table out of bounds");
  }
  const unsigned char* table = base + table_offset;
  if (GetU32(footer + 28) != Crc32c::Value(table, table_size)) {
    return Corrupt(path, "section-table checksum mismatch");
  }

  if (std::memcmp(base, kHeaderMagic, 8) != 0) {
    return Corrupt(path, "bad header magic");
  }
  if (GetU32(base + 60) != Crc32c::Value(base, 60)) {
    return Corrupt(path, "header checksum mismatch");
  }
  const uint32_t container_version = GetU32(base + 8);
  if (container_version != kContainerVersion) {
    return Corrupt(path, "unsupported container version " +
                             std::to_string(container_version));
  }
  reader.file_type_ = GetU32(base + 12);
  reader.file_version_ = GetU32(base + 16);

  reader.sections_.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    const unsigned char* entry = table + size_t{i} * kSectionEntrySize;
    SectionInfo info;
    const size_t name_len =
        ::strnlen(reinterpret_cast<const char*>(entry), kMaxSectionName);
    info.name.assign(reinterpret_cast<const char*>(entry), name_len);
    info.offset = GetU64(entry + 24);
    info.size = GetU64(entry + 32);
    info.crc = GetU32(entry + 40);
    if (info.name.empty()) {
      return Corrupt(path, "section " + std::to_string(i) + " has no name");
    }
    if (info.offset < kHeaderSize || info.offset > table_offset ||
        info.size > table_offset - info.offset) {
      return Corrupt(path, "section '" + info.name + "' out of bounds");
    }
    reader.sections_.push_back(std::move(info));
  }
  reader.verified_.assign(reader.sections_.size(), 0);
  return reader;
}

bool ContainerReader::HasSection(std::string_view name) const {
  for (const SectionInfo& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

Status ContainerReader::VerifySection(size_t i) const {
  LOFKIT_FAIL_POINT("container.verify");
  const SectionInfo& s = sections_[i];
  if (verified_[i] != 0) return Status::OK();
  const std::byte* payload = file_.data() + s.offset;
  if (Crc32c::Value(payload, s.size) != s.crc) {
    return Corrupt(path_, "section '" + s.name + "' checksum mismatch");
  }
  verified_[i] = 1;
  return Status::OK();
}

Result<std::span<const std::byte>> ContainerReader::Section(
    std::string_view name) const {
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].name != name) continue;
    LOFKIT_RETURN_IF_ERROR(VerifySection(i));
    return std::span<const std::byte>(file_.data() + sections_[i].offset,
                                      sections_[i].size);
  }
  return Status::NotFound("container '" + path_ + "' has no section '" +
                          std::string(name) + "'");
}

Status ContainerReader::VerifyAllSections() const {
  for (size_t i = 0; i < sections_.size(); ++i) {
    LOFKIT_RETURN_IF_ERROR(VerifySection(i));
  }
  return Status::OK();
}

}  // namespace lofkit
