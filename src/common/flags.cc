#include "common/flags.h"

#include <cstdlib>

#include "common/string_util.h"

namespace lofkit {

void FlagParser::Add(const std::string& name, Type type,
                     std::string default_value, std::string help) {
  Flag flag;
  flag.type = type;
  flag.value = default_value;
  flag.default_value = std::move(default_value);
  flag.help = std::move(help);
  flags_.emplace(name, std::move(flag));
}

void FlagParser::AddString(const std::string& name, std::string default_value,
                           std::string help) {
  Add(name, Type::kString, std::move(default_value), std::move(help));
}

void FlagParser::AddU64(const std::string& name, uint64_t default_value,
                        std::string help) {
  Add(name, Type::kU64, StrFormat("%llu",
                                  static_cast<unsigned long long>(
                                      default_value)),
      std::move(help));
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           std::string help) {
  Add(name, Type::kDouble, StrFormat("%g", default_value), std::move(help));
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         std::string help) {
  Add(name, Type::kBool, default_value ? "true" : "false", std::move(help));
}

Status FlagParser::SetValue(const std::string& name,
                            const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag: --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kString:
      break;
    case Type::kU64:
      LOFKIT_RETURN_IF_ERROR(ParseU64(value).status());
      break;
    case Type::kDouble:
      LOFKIT_RETURN_IF_ERROR(ParseDouble(value).status());
      break;
    case Type::kBool:
      if (value != "true" && value != "false") {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true or false, got '" +
                                       value + "'");
      }
      break;
  }
  flag.value = value;
  flag.set = true;
  return Status::OK();
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  bool flags_done = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (flags_done || arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      LOFKIT_RETURN_IF_ERROR(
          SetValue(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    // --name value, or boolean --name / --no-name.
    auto it = flags_.find(body);
    if (it != flags_.end() && it->second.type == Type::kBool) {
      LOFKIT_RETURN_IF_ERROR(SetValue(body, "true"));
      continue;
    }
    if (it == flags_.end() && body.rfind("no-", 0) == 0) {
      auto neg = flags_.find(body.substr(3));
      if (neg != flags_.end() && neg->second.type == Type::kBool) {
        LOFKIT_RETURN_IF_ERROR(SetValue(body.substr(3), "false"));
        continue;
      }
    }
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + body);
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + body + " expects a value");
    }
    LOFKIT_RETURN_IF_ERROR(SetValue(body, argv[++i]));
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::GetChecked(const std::string& name,
                                               Type type) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.type != type) {
    std::fprintf(stderr, "FATAL: flag --%s not registered with this type\n",
                 name.c_str());
    std::abort();
  }
  return it->second;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return GetChecked(name, Type::kString).value;
}

uint64_t FlagParser::GetU64(const std::string& name) const {
  return *ParseU64(GetChecked(name, Type::kU64).value);
}

double FlagParser::GetDouble(const std::string& name) const {
  return *ParseDouble(GetChecked(name, Type::kDouble).value);
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetChecked(name, Type::kBool).value == "true";
}

bool FlagParser::IsSet(const std::string& name) const {
  auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::string FlagParser::Help() const {
  std::string out;
  for (const auto& [name, flag] : flags_) {
    out += StrFormat("  --%-24s %s (default: %s)\n", name.c_str(),
                     flag.help.c_str(), flag.default_value.c_str());
  }
  return out;
}

}  // namespace lofkit
