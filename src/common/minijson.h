#ifndef LOFKIT_COMMON_MINIJSON_H_
#define LOFKIT_COMMON_MINIJSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace lofkit {

/// A small strict-JSON reader for the repo's own machine-readable outputs
/// (BENCH_*.json sidecars, --stats-json snapshots): enough for tools like
/// lofkit_benchdiff to load a document without an external dependency.
///
/// Scope: strict RFC 8259 JSON — objects, arrays, strings (with \uXXXX
/// including surrogate pairs), numbers (parsed as double), true/false/null.
/// Object members keep insertion order; duplicate keys are kept as-is and
/// Find returns the first. Not a streaming parser — the whole document
/// lives in memory twice (text + tree), which is fine for kilobyte-scale
/// sidecars and wrong for anything bigger.
struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member named `key`, or nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;
};

/// Parses one complete JSON document. Trailing whitespace is allowed;
/// any other trailing content is an error, as are documents nested deeper
/// than an implementation cap (64 levels — far beyond any sidecar).
/// Errors carry a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

/// Reads `path` and parses it with ParseJson.
Result<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace lofkit

#endif  // LOFKIT_COMMON_MINIJSON_H_
