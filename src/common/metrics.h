#ifndef LOFKIT_COMMON_METRICS_H_
#define LOFKIT_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace lofkit {

class QueryFlightRecorder;

/// Per-query work counters for the kNN engines — the quantities the paper's
/// performance sections argue in (node/page accesses and distance
/// computations, Figures 10-11 / section 6), which wall-clock time alone
/// cannot explain.
///
/// A QueryStats is plain per-worker state: engines bump its fields with
/// ordinary (non-atomic) increments through the KnnSearchContext that owns
/// the query's scratch, so the hot path stays free of synchronization and
/// allocation. Null pointer = counting disabled; counting never changes any
/// result bit. Exact per-engine semantics are documented in
/// docs/observability.md.
struct QueryStats {
  /// Queries served (kNN and radius; each batched id counts once).
  uint64_t queries = 0;
  /// Exact distance (or rank) evaluations against candidate points.
  uint64_t distance_evals = 0;
  /// Candidates or whole regions skipped by a rank/bound pruning test.
  uint64_t rank_prune_hits = 0;
  /// Internal index node expansions (tree nodes, grid shells).
  uint64_t node_visits = 0;
  /// Leaf/page scans (tree leaves, grid buckets, sequential SoA blocks).
  uint64_t leaf_visits = 0;
  /// Collector heap insertions (candidates that passed the tau test).
  uint64_t heap_pushes = 0;
  /// VA-file phase-2 candidate refinements (exact re-evaluations).
  uint64_t va_refinements = 0;
  /// Candidate points charged against an approximate engine's
  /// SearchParams::checks budget (kd-forest; 0 for the exact engines).
  uint64_t checks_used = 0;

  /// Total node/page accesses — the paper's Figure-10 x-axis quantity.
  uint64_t page_accesses() const { return node_visits + leaf_visits; }

  void Add(const QueryStats& other) {
    queries += other.queries;
    distance_evals += other.distance_evals;
    rank_prune_hits += other.rank_prune_hits;
    node_visits += other.node_visits;
    leaf_visits += other.leaf_visits;
    heap_pushes += other.heap_pushes;
    va_refinements += other.va_refinements;
    checks_used += other.checks_used;
  }

  void Reset() { *this = QueryStats{}; }

  bool IsZero() const {
    return queries == 0 && distance_evals == 0 && rank_prune_hits == 0 &&
           node_visits == 0 && leaf_visits == 0 && heap_pushes == 0 &&
           va_refinements == 0 && checks_used == 0;
  }
};

inline bool operator==(const QueryStats& a, const QueryStats& b) {
  return a.queries == b.queries && a.distance_evals == b.distance_evals &&
         a.rank_prune_hits == b.rank_prune_hits &&
         a.node_visits == b.node_visits && a.leaf_visits == b.leaf_visits &&
         a.heap_pushes == b.heap_pushes &&
         a.va_refinements == b.va_refinements &&
         a.checks_used == b.checks_used;
}

/// Records named spans on a steady clock and serializes them as Chrome
/// trace-event JSON (loadable in chrome://tracing or Perfetto). Pipeline
/// phases land on tid 0; per-worker chunks land on the worker's tid, so the
/// trace shows the parallel shape of a run, not just its total.
///
/// AddSpan/AddInstant take a mutex — they are meant for phase- and
/// chunk-granular events (at most one per ParallelFor chunk), never for
/// per-query or per-candidate work; that is what QueryStats is for.
class TraceRecorder {
 public:
  /// The recorder's time origin is its construction instant; all span
  /// timestamps are seconds since then (use NowSeconds()).
  TraceRecorder();

  /// Seconds elapsed since construction, on the same clock the spans use.
  double NowSeconds() const;

  /// Complete span [start_seconds, end_seconds] on track `tid`.
  /// Thread-safe. Spans with end < start are clamped to zero duration.
  void AddSpan(const std::string& name, uint32_t tid, double start_seconds,
               double end_seconds);

  /// Zero-duration marker event. Thread-safe.
  void AddInstant(const std::string& name, uint32_t tid, double at_seconds);

  /// RAII span: records [construction, End()-or-destruction]. A null
  /// recorder makes every operation a no-op, so call sites can create one
  /// unconditionally.
  class Span {
   public:
    Span(TraceRecorder* recorder, std::string name, uint32_t tid = 0)
        : recorder_(recorder), name_(std::move(name)), tid_(tid),
          start_(recorder != nullptr ? recorder->NowSeconds() : 0.0) {}
    ~Span() { End(); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Ends the span now (idempotent; destruction ends it otherwise).
    void End() {
      if (recorder_ == nullptr) return;
      recorder_->AddSpan(name_, tid_, start_, recorder_->NowSeconds());
      recorder_ = nullptr;
    }

   private:
    TraceRecorder* recorder_;
    std::string name_;
    uint32_t tid_;
    double start_;
  };

  size_t event_count() const;

  /// {"traceEvents": [...]} with timestamps/durations in microseconds —
  /// the stable subset of the Chrome trace-event format.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    uint32_t tid;
    double start_us;
    double dur_us;  // < 0 marks an instant event
  };

  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// Coarse liveness state for long runs: pipeline layers bump `units_done`
/// (one unit = one point scored or materialized) and set the phase label;
/// a background publisher thread reads the fields to emit heartbeat
/// gauges. All members are relaxed atomics — progress is advisory, never
/// load-bearing for results, so no ordering is required.
///
/// Phase labels must be string literals (or otherwise outlive the
/// tracker): only the pointer is stored, so readers never allocate or
/// race on string contents.
class ProgressTracker {
 public:
  void SetPhase(const char* phase) {
    phase_.store(phase, std::memory_order_relaxed);
  }
  const char* phase() const {
    const char* p = phase_.load(std::memory_order_relaxed);
    return p != nullptr ? p : "";
  }

  void SetTotal(uint64_t units) {
    units_total_.store(units, std::memory_order_relaxed);
  }
  void Add(uint64_t units) {
    units_done_.fetch_add(units, std::memory_order_relaxed);
  }

  uint64_t units_done() const {
    return units_done_.load(std::memory_order_relaxed);
  }
  uint64_t units_total() const {
    return units_total_.load(std::memory_order_relaxed);
  }

  /// done/total clamped to [0, 1]; 0 while the total is unknown.
  double FractionComplete() const {
    const uint64_t total = units_total();
    if (total == 0) return 0.0;
    const uint64_t done = units_done();
    return done >= total ? 1.0
                         : static_cast<double>(done) /
                               static_cast<double>(total);
  }

 private:
  std::atomic<const char*> phase_{nullptr};
  std::atomic<uint64_t> units_done_{0};
  std::atomic<uint64_t> units_total_{0};
};

/// Optional observability hooks threaded through the pipeline layers
/// (materializers, LofComputer, LofSweep). Every pointer defaults to null —
/// fully disabled, with zero behavior change; any subset may be set.
/// `query_stats` receives deterministic totals (per-worker shards are
/// summed after the parallel region, so every thread count yields the same
/// numbers); `trace` receives phase and per-worker chunk spans; `flight`
/// samples per-query latency records into per-worker ring buffers;
/// `progress` receives coarse liveness updates for the heartbeat
/// publisher. `trace_tid` is the track phase spans are recorded on —
/// normally 0, but a sweep running whole steps on worker threads sets it
/// to the worker's track so nested phase spans land under the step span.
struct PipelineObserver {
  QueryStats* query_stats = nullptr;
  TraceRecorder* trace = nullptr;
  QueryFlightRecorder* flight = nullptr;
  ProgressTracker* progress = nullptr;
  uint32_t trace_tid = 0;

  bool enabled() const {
    return query_stats != nullptr || trace != nullptr || flight != nullptr;
  }
};

/// A registry of named counters, gauges, and bounded histograms with
/// per-worker shards: workers accumulate into their own shard with plain
/// stores (no atomics, no locks), and Aggregate() merges the shards into
/// one Snapshot. Registration (name -> id) happens once, off the hot path;
/// recording uses the integer id only.
///
/// Aggregation semantics: counters sum across shards; a gauge takes the
/// value of the highest-numbered shard that set it (gauges are normally set
/// from one place); histograms merge bucket-wise. Snapshot order is
/// registration order, so serialized output is deterministic.
class MetricsRegistry {
 public:
  using MetricId = uint32_t;

  /// Creates the registry with `shards` per-worker shards (>= 1).
  explicit MetricsRegistry(size_t shards = 1);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or looks up) a monotonically increasing counter.
  /// Re-registering the same name returns the same id.
  MetricId Counter(const std::string& name);

  /// Registers (or looks up) a last-value-wins gauge.
  MetricId Gauge(const std::string& name);

  /// Registers (or looks up) a bounded histogram: `buckets` geometric
  /// buckets spanning [lo, hi] (lo > 0, hi > lo, 1 <= buckets <= 512) plus
  /// implicit underflow/overflow buckets, so recording can never allocate
  /// or grow. Latencies and sizes both fit: the geometric spacing keeps
  /// relative resolution constant across orders of magnitude.
  MetricId Histogram(const std::string& name, double lo, double hi,
                     size_t buckets);

  size_t shard_count() const { return shards_.size(); }

  /// Adds `delta` to a counter in shard `shard` (no synchronization; each
  /// worker must own its shard index).
  void Add(MetricId id, uint64_t delta = 1, size_t shard = 0);

  /// Sets a gauge in shard `shard`.
  void Set(MetricId id, double value, size_t shard = 0);

  /// Records one observation into a histogram in shard `shard`.
  void Record(MetricId id, double value, size_t shard = 0);

  /// Registers and fills one counter per QueryStats field, named
  /// `<prefix>.<field>` (e.g. "materialize.distance_evals").
  void AddQueryStats(const std::string& prefix, const QueryStats& stats,
                     size_t shard = 0);

  /// Aggregated point-in-time view of every registered metric.
  struct Snapshot {
    struct CounterValue {
      std::string name;
      uint64_t value = 0;
    };
    struct GaugeValue {
      std::string name;
      double value = 0.0;
      bool set = false;
    };
    struct HistogramValue {
      std::string name;
      double lo = 0.0;
      double hi = 0.0;
      std::vector<double> upper_bounds;  // one per bucket, ascending
      std::vector<uint64_t> counts;      // parallel to upper_bounds
      uint64_t underflow = 0;
      uint64_t overflow = 0;
      uint64_t total_count = 0;
      double sum = 0.0;
      /// Exact smallest/largest recorded value (NaN when count == 0).
      /// Min/max merge order-independently across shards, so quantile
      /// clamping stays deterministic at every thread count.
      double min = 0.0;
      double max = 0.0;

      /// Estimated q-quantile (q in [0, 1]) by linear interpolation
      /// within the geometric buckets, clamped to the exact [min, max]
      /// envelope — single-bucket data is therefore exact, and estimates
      /// are monotone in q. Returns NaN when the histogram is empty.
      double Quantile(double q) const;
    };

    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;

    /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with
    /// every name JSON-escaped; parses under any strict JSON reader.
    /// Non-empty histograms also carry "min"/"max"/"p50"/"p95"/"p99".
    std::string ToJson() const;

    /// OpenMetrics text exposition (the Prometheus scrape surface):
    /// counters as `lofkit_<name>_total`, gauges as `lofkit_<name>`, and
    /// histograms with cumulative `le` buckets plus `_sum`/`_count`,
    /// terminated by `# EOF`. Metric names are sanitized to
    /// [a-zA-Z0-9_:] as the format requires.
    std::string ToOpenMetrics() const;
  };

  Snapshot Aggregate() const;

  /// Writes Aggregate().ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  struct Definition {
    std::string name;
    Kind kind;
    uint32_t slot;  // index into the kind-specific shard storage
  };

  struct HistogramLayout {
    double lo;
    double hi;
    std::vector<double> upper_bounds;
  };

  struct Shard {
    std::vector<uint64_t> counters;
    std::vector<double> gauges;
    std::vector<uint8_t> gauge_set;
    // Per histogram: buckets + 2 slots (index 0 = underflow, last =
    // overflow), preallocated at registration time.
    std::vector<std::vector<uint64_t>> hist_counts;
    std::vector<double> hist_sum;
    std::vector<double> hist_min;  // +inf until the first observation
    std::vector<double> hist_max;  // -inf until the first observation
  };

  MetricId Register(const std::string& name, Kind kind);
  const Definition& Checked(MetricId id, Kind kind) const;

  std::vector<Definition> definitions_;
  std::vector<HistogramLayout> histogram_layouts_;
  std::vector<Shard> shards_;
};

/// Peak resident-set size of this process in bytes (getrusage ru_maxrss),
/// or 0 where the platform does not report it. High-water mark, not
/// current usage — it can only grow over a run.
uint64_t PeakRssBytes();

}  // namespace lofkit

#endif  // LOFKIT_COMMON_METRICS_H_
