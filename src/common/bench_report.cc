#include "common/bench_report.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace lofkit {

namespace {

void AppendNumber(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os.precision(17);
  os << v;
}

}  // namespace

void BenchReport::Add(const std::string& case_name,
                      std::vector<std::pair<std::string, double>> metrics) {
  rows_.push_back(Row{case_name, std::move(metrics)});
}

std::string BenchReport::ToJson() const {
  std::ostringstream os;
  os << "{\"bench\": \"" << JsonEscape(name_) << "\", \"rows\": [";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"case\": \"" << JsonEscape(rows_[i].case_name)
       << "\", \"metrics\": {";
    for (size_t m = 0; m < rows_[i].metrics.size(); ++m) {
      if (m > 0) os << ", ";
      os << "\"" << JsonEscape(rows_[i].metrics[m].first) << "\": ";
      AppendNumber(os, rows_[i].metrics[m].second);
    }
    os << "}}";
  }
  os << "]}\n";
  return os.str();
}

Status BenchReport::Write() const {
  std::string path = "BENCH_" + name_ + ".json";
  if (const char* dir = std::getenv("LOFKIT_BENCH_JSON_DIR");
      dir != nullptr && *dir != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToJson();
  out.close();
  if (!out) return Status::IoError("failed writing " + path);
  return Status::OK();
}

}  // namespace lofkit
