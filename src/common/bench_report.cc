#include "common/bench_report.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/string_util.h"

namespace lofkit {

namespace {

void AppendNumber(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os.precision(17);
  os << v;
}

std::string CompilerString() {
#if defined(__clang_version__)
  return std::string("clang ") + __clang_version__;
#elif defined(__VERSION__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  // Environment-derived manifest defaults; benches overwrite or extend.
  SetManifest("compiler", CompilerString());
  SetManifest("hw_concurrency",
              static_cast<double>(std::thread::hardware_concurrency()));
  const char* smoke = std::getenv("LOFKIT_BENCH_SMOKE");
  SetManifest("smoke",
              smoke != nullptr && *smoke != '\0' && *smoke != '0' ? 1.0 : 0.0);
#if defined(NDEBUG)
  SetManifest("assertions", 0.0);
#else
  SetManifest("assertions", 1.0);
#endif
}

BenchReport::ManifestEntry& BenchReport::ManifestSlot(const std::string& key) {
  for (ManifestEntry& entry : manifest_) {
    if (entry.key == key) return entry;
  }
  manifest_.push_back(ManifestEntry{key, "", 0.0, false});
  return manifest_.back();
}

void BenchReport::SetManifest(const std::string& key,
                              const std::string& value) {
  ManifestEntry& entry = ManifestSlot(key);
  entry.str = value;
  entry.is_string = true;
}

void BenchReport::SetManifest(const std::string& key, double value) {
  ManifestEntry& entry = ManifestSlot(key);
  entry.num = value;
  entry.is_string = false;
}

void BenchReport::Add(const std::string& case_name,
                      std::vector<std::pair<std::string, double>> metrics) {
  rows_.push_back(Row{case_name, std::move(metrics)});
}

std::string BenchReport::ToJson() const {
  std::ostringstream os;
  os << "{\"bench\": \"" << JsonEscape(name_) << "\", \"manifest\": {";
  for (size_t i = 0; i < manifest_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << JsonEscape(manifest_[i].key) << "\": ";
    if (manifest_[i].is_string) {
      os << "\"" << JsonEscape(manifest_[i].str) << "\"";
    } else {
      AppendNumber(os, manifest_[i].num);
    }
  }
  os << "}, \"rows\": [";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"case\": \"" << JsonEscape(rows_[i].case_name)
       << "\", \"metrics\": {";
    for (size_t m = 0; m < rows_[i].metrics.size(); ++m) {
      if (m > 0) os << ", ";
      os << "\"" << JsonEscape(rows_[i].metrics[m].first) << "\": ";
      AppendNumber(os, rows_[i].metrics[m].second);
    }
    os << "}}";
  }
  os << "]}\n";
  return os.str();
}

Status BenchReport::Write() const {
  std::string path = "BENCH_" + name_ + ".json";
  if (const char* dir = std::getenv("LOFKIT_BENCH_JSON_DIR");
      dir != nullptr && *dir != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToJson();
  out.close();
  if (!out) return Status::IoError("failed writing " + path);
  return Status::OK();
}

}  // namespace lofkit
