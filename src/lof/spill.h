#ifndef LOFKIT_LOF_SPILL_H_
#define LOFKIT_LOF_SPILL_H_

#include <string>

#include "common/cancellation.h"
#include "common/result.h"
#include "index/neighborhood_materializer.h"

namespace lofkit::internal_lof {

/// The spill rung of the memory-budget ladder, shared by every pipeline
/// entry point: streams step 1 into a uniquely named temporary container
/// file under `dir` (NeighborhoodMaterializer::MaterializeToFile — peak
/// RAM is one build window, not n * k_max), maps it back zero-copy
/// (MapFromFile), and unlinks the file immediately — POSIX keeps the
/// mapping's pages alive, so the spill file cleans itself up even if the
/// process dies mid-run. The returned M is file-backed and serves
/// bit-identical neighborhoods to the in-RAM route.
Result<NeighborhoodMaterializer> SpillMaterialize(
    const Dataset& data, const KnnIndex& index, size_t k_max, size_t threads,
    bool distinct_neighbors, const std::string& dir,
    const PipelineObserver& observer = {}, const StopToken& stop = {});

}  // namespace lofkit::internal_lof

#endif  // LOFKIT_LOF_SPILL_H_
