#ifndef LOFKIT_LOF_EXPLAIN_H_
#define LOFKIT_LOF_EXPLAIN_H_

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "index/neighborhood_materializer.h"

namespace lofkit {

/// Why a point is locally outlying, attribute by attribute — the paper's
/// first direction of ongoing work (section 8: "how to describe or explain
/// why the identified local outliers are exceptional", important in high
/// dimensions where an object "may be outlying only on some, but not on
/// all, dimensions").
struct OutlierExplanation {
  /// Mean of each attribute over the MinPts-neighborhood.
  std::vector<double> neighbor_mean;
  /// Standard deviation of each attribute over the MinPts-neighborhood.
  std::vector<double> neighbor_stddev;
  /// The point's deviation from the neighborhood in stddev units per
  /// attribute (a robust floor keeps degenerate attributes finite).
  std::vector<double> deviation;
  /// `deviation` normalized to sum to 1 — the fraction of the point's
  /// outlyingness attributable to each dimension.
  std::vector<double> contribution;
  /// Dimensions ordered by descending contribution.
  std::vector<size_t> ranked_dimensions;
};

/// Explains point `i` against its MinPts-nearest neighbors: per dimension,
/// how far the point sits from the neighborhood's attribute distribution.
/// Dimensions with zero spread in the neighborhood use the global attribute
/// spread as the scale floor.
Result<OutlierExplanation> ExplainOutlier(const Dataset& data,
                                          const NeighborhoodMaterializer& m,
                                          size_t i, size_t min_pts);

/// Serializes one explained outlier as a JSON object:
///   {"index": ..., "score": ..., "neighbor_mean": [...],
///    "neighbor_stddev": [...], "deviation": [...], "contribution": [...],
///    "ranked_dimensions": [...]}
/// Non-finite numbers serialize as JSON null (there is no inf/nan in
/// JSON) — in particular the infinite aggregated score of a point whose
/// neighbors sit on a duplicate pile, so the export always parses.
std::string ExplanationToJson(const OutlierExplanation& explanation,
                              size_t index, double score);

}  // namespace lofkit

#endif  // LOFKIT_LOF_EXPLAIN_H_
