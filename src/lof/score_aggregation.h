#ifndef LOFKIT_LOF_SCORE_AGGREGATION_H_
#define LOFKIT_LOF_SCORE_AGGREGATION_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"

namespace lofkit {

/// How to aggregate outlier scores over a MinPts range (section 6.2). The
/// paper proposes the maximum ("to highlight the instance at which the
/// object is the most outlying") and argues the minimum can erase outliers
/// and the mean can dilute them; all three are provided so that the
/// ablation bench can demonstrate exactly that. The enum applies to every
/// LocalScorer's sweep, not just LOF — the aggregation is a property of the
/// range heuristic, not of the score formula.
enum class LofAggregation { kMax, kMin, kMean };

/// Canonical name for an aggregation ("max", "min", "mean").
inline std::string_view LofAggregationName(LofAggregation aggregation) {
  switch (aggregation) {
    case LofAggregation::kMax:
      return "max";
    case LofAggregation::kMin:
      return "min";
    case LofAggregation::kMean:
      return "mean";
  }
  return "unknown";
}

/// Validates a MinPts sweep range (shared by every sweep entry point so the
/// error text cannot drift between them).
inline Status ValidateSweepRange(size_t min_pts_lb, size_t min_pts_ub) {
  if (min_pts_lb == 0 || min_pts_lb > min_pts_ub) {
    return Status::InvalidArgument(
        StrFormat("need 1 <= MinPtsLB (%zu) <= MinPtsUB (%zu)", min_pts_lb,
                  min_pts_ub));
  }
  return Status::OK();
}

/// One aggregation step, shared by every sweep path so the accumulation
/// order (ascending MinPts) — and thus the aggregated bits — cannot drift
/// between them.
inline void AggregateStep(LofAggregation aggregation, size_t steps,
                          const std::vector<double>& scores,
                          std::vector<double>& aggregated) {
  for (size_t i = 0; i < aggregated.size(); ++i) {
    switch (aggregation) {
      case LofAggregation::kMax:
        aggregated[i] = std::max(aggregated[i], scores[i]);
        break;
      case LofAggregation::kMin:
        aggregated[i] = std::min(aggregated[i], scores[i]);
        break;
      case LofAggregation::kMean:
        aggregated[i] += scores[i] / static_cast<double>(steps);
        break;
    }
  }
}

/// The neutral start value of an aggregation (one entry per point).
inline std::vector<double> MakeAggregationIdentity(LofAggregation aggregation,
                                                   size_t n) {
  switch (aggregation) {
    case LofAggregation::kMax:
      return std::vector<double>(n, -std::numeric_limits<double>::infinity());
    case LofAggregation::kMin:
      return std::vector<double>(n, std::numeric_limits<double>::infinity());
    case LofAggregation::kMean:
      break;
  }
  return std::vector<double>(n, 0.0);
}

/// AggregateStep restricted to the pruning survivors (the other score
/// slots are NaN placeholders). The per-slot arithmetic and the
/// ascending-MinPts call order match AggregateStep exactly, so survivor
/// slots end up bit-identical to the full sweep's.
inline void AggregateStepSparse(LofAggregation aggregation, size_t steps,
                                const std::vector<double>& scores,
                                std::span<const uint32_t> survivors,
                                std::vector<double>& aggregated) {
  for (uint32_t i : survivors) {
    switch (aggregation) {
      case LofAggregation::kMax:
        aggregated[i] = std::max(aggregated[i], scores[i]);
        break;
      case LofAggregation::kMin:
        aggregated[i] = std::min(aggregated[i], scores[i]);
        break;
      case LofAggregation::kMean:
        aggregated[i] += scores[i] / static_cast<double>(steps);
        break;
    }
  }
}

}  // namespace lofkit

#endif  // LOFKIT_LOF_SCORE_AGGREGATION_H_
