#include "lof/local_scorer.h"

#include <algorithm>
#include <cmath>

#include "baselines/db_outlier.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "lof/lof_computer.h"

namespace lofkit {

double LocalScores::PhaseSeconds(std::string_view name) const {
  for (const ScorerPhase& phase : phases) {
    if (phase.name == name) return phase.seconds;
  }
  return 0.0;
}

namespace {

Status RequireCoordinates(const LocalScorer& scorer,
                          const DensitySubstrate& substrate) {
  if (!substrate.has_coordinates()) {
    return Status::InvalidArgument(StrFormat(
        "scorer '%s' reads the original coordinates: construct the "
        "substrate with a dataset and metric",
        std::string(scorer.name()).c_str()));
  }
  return Status::OK();
}

void FinishInfiniteDensityFlag(LocalScores& scores) {
  scores.has_infinite_density =
      std::any_of(scores.density.begin(), scores.density.end(),
                  [](double d) { return std::isinf(d); });
}

// The k-distance pre-pass several scorers share: out[i] = k-distance(i).
Status KDistancePass(const DensitySubstrate& substrate, size_t min_pts,
                     const LocalScorerOptions& options,
                     std::vector<double>& out) {
  out.resize(substrate.size());
  return substrate.Scan(
      substrate.size(), options.threads, options.stop, options.observer,
      [&](DensitySubstrate::Cursor& cursor, size_t i) -> Status {
        LOFKIT_ASSIGN_OR_RETURN(auto view,
                                substrate.ViewOf(cursor, i, min_pts));
        out[i] = view.k_distance;
        return Status::OK();
      });
}

// ---------------------------------------------------------------------------
// LOF — the paper's scorer, delegating to the shared LofComputer passes.

class LofLocalScorer final : public LocalScorer {
 public:
  std::string_view name() const override { return "lof"; }
  ScorerKind kind() const override { return ScorerKind::kLof; }

  Result<LocalScores> Score(const DensitySubstrate& substrate,
                            size_t min_pts,
                            const LocalScorerOptions& options) const override {
    LofComputeOptions lof_options;
    lof_options.use_reachability = options.use_reachability;
    lof_options.threads = options.threads;
    lof_options.observer = options.observer;
    lof_options.stop = options.stop;
    LOFKIT_ASSIGN_OR_RETURN(
        LofScores lof,
        LofComputer::ComputeOverSubstrate(substrate, min_pts, lof_options));
    LocalScores scores;
    scores.min_pts = min_pts;
    scores.score = std::move(lof.lof);
    scores.density = std::move(lof.lrd);
    scores.has_infinite_density = lof.has_infinite_lrd;
    scores.phases = {
        {"k_distance", lof.phase_times.k_distance_seconds},
        {"lrd", lof.phase_times.lrd_seconds},
        {"lof", lof.phase_times.lof_seconds},
    };
    return scores;
  }
};

// ---------------------------------------------------------------------------
// LDOF (Zhang, Hutter & Jin): score = d_bar / D_bar, the mean distance to
// the k neighbors over the mean pairwise distance among those neighbors. A
// point deep inside its neighborhood's own spread scores ~1; a point whose
// neighbors are mutually close but far from it scores >> 1. Needs the
// original coordinates: the neighbor-pair distances are not in M.

class LdofScorer final : public LocalScorer {
 public:
  std::string_view name() const override { return "ldof"; }
  ScorerKind kind() const override { return ScorerKind::kLdof; }
  bool requires_coordinates() const override { return true; }

  Result<LocalScores> Score(const DensitySubstrate& substrate,
                            size_t min_pts,
                            const LocalScorerOptions& options) const override {
    LOFKIT_RETURN_IF_ERROR(RequireCoordinates(*this, substrate));
    LOFKIT_RETURN_IF_ERROR(substrate.ValidateMinPts(min_pts));
    const Dataset& data = *substrate.data();
    const Metric& metric = *substrate.metric();
    const size_t n = substrate.size();

    LocalScores scores;
    scores.min_pts = min_pts;
    scores.score.resize(n);
    scores.density.resize(n);
    Stopwatch watch;
    TraceRecorder::Span span(options.observer.trace, "ldof",
                             options.observer.trace_tid);
    LOFKIT_RETURN_IF_ERROR(substrate.Scan(
        n, options.threads, options.stop, options.observer,
        [&](DensitySubstrate::Cursor& cursor, size_t i) -> Status {
          LOFKIT_ASSIGN_OR_RETURN(auto view,
                                  substrate.ViewOf(cursor, i, min_pts));
          const std::span<const Neighbor> neighborhood = view.neighborhood;
          const size_t count = neighborhood.size();
          double dist_sum = 0.0;
          for (const Neighbor& o : neighborhood) dist_sum += o.distance;
          const double d_bar = dist_sum / static_cast<double>(count);
          // Mean pairwise ("inner") distance of the neighborhood, O(k^2)
          // exact distances in deterministic (a, b) order.
          double pair_sum = 0.0;
          size_t pairs = 0;
          for (size_t a = 0; a + 1 < count; ++a) {
            auto pa = data.point(neighborhood[a].index);
            for (size_t b = a + 1; b < count; ++b) {
              pair_sum += metric.Distance(pa, data.point(neighborhood[b].index));
              ++pairs;
            }
          }
          const double inner_bar =
              pairs > 0 ? pair_sum / static_cast<double>(pairs) : 0.0;
          scores.density[i] =
              inner_bar > 0.0 ? 1.0 / inner_bar
                              : std::numeric_limits<double>::infinity();
          if (d_bar == 0.0 && inner_bar == 0.0) {
            // The point sits on a pile of its own duplicates — the densest
            // possible configuration, scored 1 like LOF's inf/inf
            // convention.
            scores.score[i] = 1.0;
          } else if (inner_bar > 0.0) {
            scores.score[i] = d_bar / inner_bar;
          } else {
            scores.score[i] = std::numeric_limits<double>::infinity();
          }
          return Status::OK();
        }));
    span.End();
    scores.phases = {{"ldof", watch.ElapsedSeconds()}};
    FinishInfiniteDensityFlag(scores);
    substrate.FoldQueryStats(options.observer);
    return scores;
  }
};

// ---------------------------------------------------------------------------
// KDE local scorer: a kernel density estimate with an adaptive per-neighbor
// bandwidth h_o = scale * k-distance(o) (dense regions get narrow kernels,
// sparse regions wide ones), compared LOF-style against the neighbors'
// densities. Works entirely from the substrate views — like LOF, it never
// needs the original coordinates: the kernel only consumes the stored
// query-to-neighbor distances.

class KdeScorer final : public LocalScorer {
 public:
  std::string_view name() const override { return "kde"; }
  ScorerKind kind() const override { return ScorerKind::kKde; }

  Result<LocalScores> Score(const DensitySubstrate& substrate,
                            size_t min_pts,
                            const LocalScorerOptions& options) const override {
    if (!(options.kde_bandwidth_scale > 0.0)) {
      return Status::InvalidArgument(
          StrFormat("kde_bandwidth_scale (%g) must be > 0",
                    options.kde_bandwidth_scale));
    }
    LOFKIT_RETURN_IF_ERROR(substrate.ValidateMinPts(min_pts));
    const size_t n = substrate.size();
    const double scale = options.kde_bandwidth_scale;
    LocalScores scores;
    scores.min_pts = min_pts;
    scores.score.resize(n);
    scores.density.resize(n);
    Stopwatch watch;
    TraceRecorder* trace = options.observer.trace;

    // Pass 0: k-distances — they are the adaptive bandwidths.
    std::vector<double> k_distance;
    {
      TraceRecorder::Span span(trace, "k_distance",
                               options.observer.trace_tid);
      LOFKIT_RETURN_IF_ERROR(
          KDistancePass(substrate, min_pts, options, k_distance));
    }
    ScorerPhase k_distance_phase{"k_distance", watch.ElapsedSeconds()};
    watch.Reset();

    // Density pass: dens(p) = mean over neighbors o of
    // exp(-d(p,o)^2 / (2 h_o^2)) / h_o. A zero bandwidth (o has min_pts
    // exact duplicates) degenerates to a point mass: infinite contribution
    // at distance 0, none elsewhere — the KDE analogue of LOF's infinite
    // lrd on duplicate piles.
    TraceRecorder::Span density_span(trace, "kde_density",
                                     options.observer.trace_tid);
    LOFKIT_RETURN_IF_ERROR(substrate.Scan(
        n, options.threads, options.stop, options.observer,
        [&](DensitySubstrate::Cursor& cursor, size_t i) -> Status {
          LOFKIT_ASSIGN_OR_RETURN(auto view,
                                  substrate.ViewOf(cursor, i, min_pts));
          double sum = 0.0;
          bool infinite = false;
          for (const Neighbor& o : view.neighborhood) {
            const double h = scale * k_distance[o.index];
            if (h > 0.0) {
              const double z = o.distance / h;
              sum += std::exp(-0.5 * z * z) / h;
            } else if (o.distance == 0.0) {
              infinite = true;
            }
          }
          scores.density[i] =
              infinite ? std::numeric_limits<double>::infinity()
                       : sum / static_cast<double>(view.neighborhood.size());
          return Status::OK();
        }));
    density_span.End();
    ScorerPhase density_phase{"kde_density", watch.ElapsedSeconds()};
    watch.Reset();

    // Score pass: the LOF-shaped ratio of the neighbors' densities to the
    // point's own, with the same degenerate conventions (inf/inf := 1,
    // 0/0 := 1), so duplicate piles score 1 instead of NaN.
    TraceRecorder::Span score_span(trace, "kde_score",
                                   options.observer.trace_tid);
    LOFKIT_RETURN_IF_ERROR(substrate.Scan(
        n, options.threads, options.stop, options.observer,
        [&](DensitySubstrate::Cursor& cursor, size_t i) -> Status {
          LOFKIT_ASSIGN_OR_RETURN(auto view,
                                  substrate.ViewOf(cursor, i, min_pts));
          const double dens_i = scores.density[i];
          double sum = 0.0;
          for (const Neighbor& o : view.neighborhood) {
            const double dens_o = scores.density[o.index];
            if ((std::isinf(dens_o) && std::isinf(dens_i)) ||
                (dens_o == 0.0 && dens_i == 0.0)) {
              sum += 1.0;
            } else {
              sum += dens_o / dens_i;
            }
          }
          scores.score[i] =
              sum / static_cast<double>(view.neighborhood.size());
          return Status::OK();
        }));
    score_span.End();
    scores.phases = {k_distance_phase, density_phase,
                     {"kde_score", watch.ElapsedSeconds()}};
    FinishInfiniteDensityFlag(scores);
    substrate.FoldQueryStats(options.observer);
    return scores;
  }
};

// ---------------------------------------------------------------------------
// kNN-distance ranking (Ramaswamy, Rastogi & Shim): score = k-distance —
// the global baseline, now a one-pass scorer on the substrate so it shares
// sweeps, ranking, stats and degradation with LOF.

class KnnDistanceScorer final : public LocalScorer {
 public:
  std::string_view name() const override { return "knn_distance"; }
  ScorerKind kind() const override { return ScorerKind::kKnnDistance; }

  Result<LocalScores> Score(const DensitySubstrate& substrate,
                            size_t min_pts,
                            const LocalScorerOptions& options) const override {
    LOFKIT_RETURN_IF_ERROR(substrate.ValidateMinPts(min_pts));
    LocalScores scores;
    scores.min_pts = min_pts;
    Stopwatch watch;
    TraceRecorder::Span span(options.observer.trace, "k_distance",
                             options.observer.trace_tid);
    LOFKIT_RETURN_IF_ERROR(
        KDistancePass(substrate, min_pts, options, scores.score));
    span.End();
    scores.density.resize(scores.score.size());
    for (size_t i = 0; i < scores.score.size(); ++i) {
      scores.density[i] = scores.score[i] > 0.0
                              ? 1.0 / scores.score[i]
                              : std::numeric_limits<double>::infinity();
    }
    scores.phases = {{"k_distance", watch.ElapsedSeconds()}};
    FinishInfiniteDensityFlag(scores);
    substrate.FoldQueryStats(options.observer);
    return scores;
  }
};

// ---------------------------------------------------------------------------
// DB(pct, dmin) baseline (Knorr & Ng, Definition 2 of the paper): a binary
// verdict mapped to score 1/0 so it rides the shared ranking and quality
// bench. With db_dmin == 0 the radius is derived from the data (2x the
// median MinPts-distance), so the baseline runs without manual tuning.

class DbOutlierScorer final : public LocalScorer {
 public:
  std::string_view name() const override { return "db_outlier"; }
  ScorerKind kind() const override { return ScorerKind::kDbOutlier; }
  bool requires_coordinates() const override { return true; }

  Result<LocalScores> Score(const DensitySubstrate& substrate,
                            size_t min_pts,
                            const LocalScorerOptions& options) const override {
    LOFKIT_RETURN_IF_ERROR(RequireCoordinates(*this, substrate));
    LOFKIT_RETURN_IF_ERROR(substrate.ValidateMinPts(min_pts));
    if (options.db_dmin < 0.0) {
      return Status::InvalidArgument(
          StrFormat("db_dmin (%g) must be >= 0", options.db_dmin));
    }
    LocalScores scores;
    scores.min_pts = min_pts;
    Stopwatch watch;
    TraceRecorder* trace = options.observer.trace;

    double dmin = options.db_dmin;
    if (dmin == 0.0) {
      std::vector<double> k_distance;
      TraceRecorder::Span span(trace, "k_distance",
                               options.observer.trace_tid);
      LOFKIT_RETURN_IF_ERROR(
          KDistancePass(substrate, min_pts, options, k_distance));
      span.End();
      scores.phases.push_back({"k_distance", watch.ElapsedSeconds()});
      watch.Reset();
      // Median of the MinPts-distances: a radius that brackets "typical"
      // local spacing; doubled so cluster members comfortably exceed the
      // in-ball threshold. Deterministic (full sort, fixed tie order).
      std::sort(k_distance.begin(), k_distance.end());
      dmin = 2.0 * k_distance[k_distance.size() / 2];
    }

    // The nested-loop scan polls the token only here: Detect is the
    // baseline's own sequential kernel and stays unchanged.
    LOFKIT_RETURN_IF_ERROR(options.stop.CheckDeadline());
    TraceRecorder::Span span(trace, "db_scan",
                             options.observer.trace_tid);
    LOFKIT_ASSIGN_OR_RETURN(
        DbOutlierResult verdicts,
        DbOutlierDetector::Detect(*substrate.data(), *substrate.metric(),
                                  options.db_pct, dmin));
    LOFKIT_RETURN_IF_ERROR(options.stop.CheckDeadline());
    span.End();
    const size_t n = substrate.size();
    scores.score.resize(n);
    scores.density.resize(n);
    for (size_t i = 0; i < n; ++i) {
      scores.score[i] = verdicts.is_outlier[i] ? 1.0 : 0.0;
      scores.density[i] = static_cast<double>(verdicts.neighbor_count[i]);
    }
    scores.phases.push_back({"db_scan", watch.ElapsedSeconds()});
    substrate.FoldQueryStats(options.observer);
    return scores;
  }
};

}  // namespace

std::vector<ScorerKind> AllScorerKinds() {
  return {ScorerKind::kLof, ScorerKind::kLdof, ScorerKind::kKde,
          ScorerKind::kKnnDistance, ScorerKind::kDbOutlier};
}

std::string_view ScorerKindName(ScorerKind kind) {
  switch (kind) {
    case ScorerKind::kLof:
      return "lof";
    case ScorerKind::kLdof:
      return "ldof";
    case ScorerKind::kKde:
      return "kde";
    case ScorerKind::kKnnDistance:
      return "knn_distance";
    case ScorerKind::kDbOutlier:
      return "db_outlier";
  }
  return "unknown";
}

std::unique_ptr<LocalScorer> CreateScorer(ScorerKind kind) {
  switch (kind) {
    case ScorerKind::kLof:
      return std::make_unique<LofLocalScorer>();
    case ScorerKind::kLdof:
      return std::make_unique<LdofScorer>();
    case ScorerKind::kKde:
      return std::make_unique<KdeScorer>();
    case ScorerKind::kKnnDistance:
      return std::make_unique<KnnDistanceScorer>();
    case ScorerKind::kDbOutlier:
      return std::make_unique<DbOutlierScorer>();
  }
  return nullptr;
}

Result<std::unique_ptr<LocalScorer>> CreateScorerByName(
    std::string_view name) {
  for (ScorerKind kind : AllScorerKinds()) {
    if (ScorerKindName(kind) == name) return CreateScorer(kind);
  }
  std::string valid;
  for (ScorerKind kind : AllScorerKinds()) {
    if (!valid.empty()) valid += ", ";
    valid += ScorerKindName(kind);
  }
  return Status::NotFound("unknown scorer: " + std::string(name) +
                          " (valid: " + valid + ")");
}

}  // namespace lofkit
