#ifndef LOFKIT_LOF_LOCAL_SCORER_H_
#define LOFKIT_LOF_LOCAL_SCORER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancellation.h"
#include "common/metrics.h"
#include "common/result.h"
#include "lof/density_substrate.h"

namespace lofkit {

/// The local-outlier scorers lofkit ships on the shared DensitySubstrate.
/// LOF is the paper's scorer; LDOF and the KDE density scorer are the
/// related formulations of the same "compare a point's local density to
/// its neighbors'" idea; the kNN-distance and DB(pct, dmin) baselines are
/// the global notions section 3 argues against, rewired onto the same
/// substrate so every scorer shares contexts, sweeps, ranking, stats and
/// degradation paths.
enum class ScorerKind {
  kLof,          ///< local outlier factor (Definitions 5-7)
  kLdof,         ///< local distance-based outlier factor (Zhang et al.)
  kKde,          ///< kernel-density local scorer (adaptive Gaussian kernel)
  kKnnDistance,  ///< k-distance ranking of Ramaswamy et al. (global)
  kDbOutlier,    ///< DB(pct, dmin) of Knorr & Ng (global, binary)
};

/// Wall-clock seconds of one named scorer phase ("k_distance", "lrd", ...).
/// Scorers report their own phase vocabulary; the CLI and sweep surface it
/// generically ("phase.<name>_seconds" gauges).
struct ScorerPhase {
  std::string name;
  double seconds = 0.0;
};

/// Per-point output of one scorer at one MinPts value — the scorer-agnostic
/// shape the sweep, ranking, and stats layers consume.
struct LocalScores {
  size_t min_pts = 0;

  /// The outlier score per point; larger = more outlying for every scorer
  /// (the DB baseline maps its binary verdict to 1/0). May be +infinity
  /// (duplicate degeneracies) but never NaN.
  std::vector<double> score;

  /// The scorer's local density estimate per point (lrd for LOF, kernel
  /// density for KDE, 1 / k-distance for the kNN baseline, the in-ball
  /// count for DB, 1 / mean-pairwise-neighbor-distance for LDOF).
  std::vector<double> density;

  /// True when any density is infinite (duplicate degeneracy occurred).
  bool has_infinite_density = false;

  /// Per-phase wall times, in the order the phases ran.
  std::vector<ScorerPhase> phases;

  /// Seconds of the named phase (0 when the scorer has no such phase).
  double PhaseSeconds(std::string_view name) const;
};

/// Knobs shared by every scorer plus the scorer-specific dials (each
/// scorer reads only its own; the rest are inert, so one options struct
/// can drive a whole sweep).
struct LocalScorerOptions {
  /// Worker threads for the scorer's scans (0 = one per hardware thread,
  /// 1 = sequential). Every thread count produces bit-identical scores.
  size_t threads = 1;

  /// Observability hooks (query-cost counters on the re-query route +
  /// trace spans per phase).
  PipelineObserver observer;

  /// Cooperative cancellation/deadline token, polled at chunk boundaries.
  StopToken stop;

  /// LOF only: Definition-5 reachability smoothing (see LofComputeOptions).
  bool use_reachability = true;

  /// KDE only: per-neighbor bandwidth h_o = scale * k-distance(o). Larger
  /// smooths more; must be > 0.
  double kde_bandwidth_scale = 1.0;

  /// DB baseline only: the pct of DB(pct, dmin) (Definition 2).
  double db_pct = 95.0;

  /// DB baseline only: the dmin radius. 0 (the default) derives it from
  /// the data as 2x the median MinPts-distance, so the baseline runs
  /// without manual radius tuning.
  double db_dmin = 0.0;
};

/// A local-outlier scorer over the shared density substrate. Implementations
/// are stateless (all per-run state lives in the substrate's cursors and
/// the returned LocalScores), so one instance may score many substrates.
class LocalScorer {
 public:
  virtual ~LocalScorer() = default;

  /// Canonical name ("lof", "ldof", "kde", "knn_distance", "db_outlier").
  virtual std::string_view name() const = 0;

  virtual ScorerKind kind() const = 0;

  /// Whether Score needs the original coordinates (substrate constructed
  /// with a dataset + metric): true for LDOF (neighbor-pair distances are
  /// not in M) and the DB baseline (radius scans).
  virtual bool requires_coordinates() const { return false; }

  /// Scores every point of the substrate at `min_pts`. Deterministic at
  /// every thread count and identical on both substrate routes (for the
  /// scorers that read only views; the DB baseline scans coordinates, so
  /// its route question is moot).
  virtual Result<LocalScores> Score(
      const DensitySubstrate& substrate, size_t min_pts,
      const LocalScorerOptions& options = {}) const = 0;
};

/// All scorer kinds, for parameterized tests, the CLI, and the
/// cross-scorer quality bench.
std::vector<ScorerKind> AllScorerKinds();

/// Canonical name of a scorer kind.
std::string_view ScorerKindName(ScorerKind kind);

/// Creates a scorer of the given kind.
std::unique_ptr<LocalScorer> CreateScorer(ScorerKind kind);

/// Creates a scorer by name. An unknown name fails with NotFound, listing
/// every registered scorer — the same UX as the index-engine factory.
Result<std::unique_ptr<LocalScorer>> CreateScorerByName(
    std::string_view name);

}  // namespace lofkit

#endif  // LOFKIT_LOF_LOCAL_SCORER_H_
