#include "lof/subspace.h"

#include <algorithm>

#include "common/string_util.h"
#include "lof/lof_computer.h"

namespace lofkit {

namespace {

// Emits all ascending index subsets of {0..d-1} with size in [1, max_size].
void EnumerateSubsets(size_t d, size_t max_size,
                      std::vector<std::vector<size_t>>& out) {
  std::vector<size_t> current;
  auto recurse = [&](auto&& self, size_t start) -> void {
    if (!current.empty()) out.push_back(current);
    if (current.size() == max_size) return;
    for (size_t dim = start; dim < d; ++dim) {
      current.push_back(dim);
      self(self, dim + 1);
      current.pop_back();
    }
  };
  recurse(recurse, 0);
}

bool IsSubsetOf(const std::vector<size_t>& small,
                const std::vector<size_t>& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

}  // namespace

Result<std::vector<SubspaceExplanation>> FindOutlyingSubspaces(
    const Dataset& data, size_t point, const SubspaceSearchOptions& options) {
  if (point >= data.size()) {
    return Status::NotFound(StrFormat("point index %zu out of range", point));
  }
  if (options.max_dimensions == 0) {
    return Status::InvalidArgument("max_dimensions must be >= 1");
  }
  if (data.dimension() > 30) {
    return Status::InvalidArgument(
        "subspace enumeration is capped at 30 dimensions");
  }
  if (options.min_pts == 0 || options.min_pts >= data.size()) {
    return Status::InvalidArgument(
        "min_pts must be in [1, n-1] for the projected LOF runs");
  }

  std::vector<std::vector<size_t>> subsets;
  EnumerateSubsets(data.dimension(),
                   std::min(options.max_dimensions, data.dimension()),
                   subsets);

  std::vector<SubspaceExplanation> outlying;
  for (const std::vector<size_t>& dims : subsets) {
    LOFKIT_ASSIGN_OR_RETURN(Dataset projected, data.Project(dims));
    const Dataset working =
        options.normalize ? projected.NormalizedToUnitBox() : projected;
    LOFKIT_ASSIGN_OR_RETURN(
        LofScores scores,
        LofComputer::ComputeFromScratch(working, Euclidean(),
                                        options.min_pts));
    if (scores.lof[point] > options.lof_threshold) {
      outlying.push_back(SubspaceExplanation{dims, scores.lof[point]});
    }
  }

  // Keep only minimal subspaces: drop any whose strict subset already
  // explains the point.
  std::vector<SubspaceExplanation> minimal;
  for (const SubspaceExplanation& candidate : outlying) {
    bool dominated = false;
    for (const SubspaceExplanation& other : outlying) {
      if (other.dimensions.size() < candidate.dimensions.size() &&
          IsSubsetOf(other.dimensions, candidate.dimensions)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(candidate);
  }
  std::sort(minimal.begin(), minimal.end(),
            [](const SubspaceExplanation& a, const SubspaceExplanation& b) {
              if (a.dimensions.size() != b.dimensions.size()) {
                return a.dimensions.size() < b.dimensions.size();
              }
              return a.lof > b.lof;
            });
  return minimal;
}

}  // namespace lofkit
