#include "lof/lof_computer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace lofkit {

Result<LofScores> LofComputer::Compute(const NeighborhoodMaterializer& m,
                                       size_t min_pts,
                                       const LofComputeOptions& options) {
  if (min_pts == 0 || min_pts > m.k_max()) {
    return Status::OutOfRange(
        StrFormat("min_pts (%zu) must be in [1, k_max=%zu]", min_pts,
                  m.k_max()));
  }
  const size_t n = m.size();
  const size_t threads = options.threads;
  LofScores scores;
  scores.min_pts = min_pts;
  scores.lrd.resize(n);
  scores.lof.resize(n);

  // All three passes are embarrassingly parallel: point i only reads M (and
  // in the LOF pass the completed lrd array) and writes its own slot, so
  // any thread count produces bit-identical results.
  Stopwatch watch;
  TraceRecorder* trace = options.observer.trace;

  // Pass 0 (cheap): k-distances, needed for the reachability distances.
  std::vector<double> k_distance(n);
  {
    TraceRecorder::Span span(trace, "k_distance");
    LOFKIT_RETURN_IF_ERROR(
        ParallelFor(n, threads, options.stop, [&](size_t i) -> Status {
          LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
          k_distance[i] = view.k_distance;
          return Status::OK();
        }));
  }
  scores.phase_times.k_distance_seconds = watch.ElapsedSeconds();
  watch.Reset();

  // First scan of M: local reachability densities (Definition 6).
  TraceRecorder::Span lrd_span(trace, "lrd");
  LOFKIT_RETURN_IF_ERROR(ParallelFor(n, threads, options.stop, [&](size_t i)
                                                                   -> Status {
    LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
    double sum = 0.0;
    for (const Neighbor& o : view.neighborhood) {
      // reach-dist(i, o) = max(k-distance(o), d(i, o))   (Definition 5);
      // the simplified ablation variant uses the raw distance instead.
      sum += options.use_reachability
                 ? std::max(k_distance[o.index], o.distance)
                 : o.distance;
    }
    if (sum > 0.0) {
      scores.lrd[i] =
          static_cast<double>(view.neighborhood.size()) / sum;
    } else {
      scores.lrd[i] = std::numeric_limits<double>::infinity();
    }
    return Status::OK();
  }));
  // Derived after the scan rather than inside it so workers never contend
  // on a shared flag.
  scores.has_infinite_lrd =
      std::any_of(scores.lrd.begin(), scores.lrd.end(),
                  [](double lrd) { return std::isinf(lrd); });
  lrd_span.End();
  scores.phase_times.lrd_seconds = watch.ElapsedSeconds();
  watch.Reset();

  // Second scan of M: LOF values (Definition 7).
  TraceRecorder::Span lof_span(trace, "lof");
  LOFKIT_RETURN_IF_ERROR(ParallelFor(n, threads, options.stop, [&](size_t i)
                                                                   -> Status {
    LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
    const double lrd_i = scores.lrd[i];
    double sum = 0.0;
    for (const Neighbor& o : view.neighborhood) {
      const double lrd_o = scores.lrd[o.index];
      if (std::isinf(lrd_o) && std::isinf(lrd_i)) {
        sum += 1.0;  // duplicate-degenerate convention: inf/inf := 1
      } else {
        sum += lrd_o / lrd_i;  // finite/inf -> 0, inf/finite -> inf
      }
    }
    scores.lof[i] = sum / static_cast<double>(view.neighborhood.size());
    return Status::OK();
  }));
  lof_span.End();
  scores.phase_times.lof_seconds = watch.ElapsedSeconds();
  return scores;
}

Result<LofScores> LofComputer::ComputeRequery(
    const Dataset& data, const KnnIndex& index, size_t min_pts,
    const LofComputeOptions& options) {
  if (min_pts == 0) {
    return Status::OutOfRange("min_pts must be >= 1");
  }
  if (min_pts >= data.size()) {
    return Status::InvalidArgument(
        StrFormat("min_pts (%zu) must be smaller than the dataset size "
                  "(%zu): every point needs min_pts neighbors besides itself",
                  min_pts, data.size()));
  }
  const size_t n = data.size();
  const size_t threads = options.threads;
  // Mirrors ParallelForWorker's resolution so worker ids index ctxs safely.
  const size_t num_workers = std::min(ResolveThreadCount(threads), n);
  std::vector<KnnSearchContext> ctxs(num_workers);
  std::vector<QueryStats> worker_stats(num_workers);
  if (options.observer.query_stats != nullptr) {
    for (size_t w = 0; w < num_workers; ++w) {
      ctxs[w].stats = &worker_stats[w];
    }
  }

  LofScores scores;
  scores.min_pts = min_pts;
  scores.lrd.resize(n);
  scores.lof.resize(n);
  std::vector<double> k_distance(n);

  Stopwatch watch;
  TraceRecorder* trace = options.observer.trace;

  // Pass 0: k-distances. Query(p, k) returns >= min_pts entries whenever
  // min_pts < n, so indexing entry min_pts - 1 is always in range.
  {
    TraceRecorder::Span span(trace, "k_distance");
    LOFKIT_RETURN_IF_ERROR(ParallelForWorker(
        n, threads, options.stop, [&](size_t worker, size_t i) -> Status {
          KnnSearchContext& ctx = ctxs[worker];
          LOFKIT_RETURN_IF_ERROR(index.Query(
              data.point(i), min_pts, static_cast<uint32_t>(i), ctx));
          k_distance[i] = ctx.results()[min_pts - 1].distance;
          return Status::OK();
        }));
  }
  scores.phase_times.k_distance_seconds = watch.ElapsedSeconds();
  watch.Reset();

  // LRD pass, re-querying the neighborhood instead of reading M. The
  // neighbor order matches View(i, min_pts) exactly, so the sum — and the
  // result bits — are identical to the materialized path.
  TraceRecorder::Span lrd_span(trace, "lrd");
  LOFKIT_RETURN_IF_ERROR(ParallelForWorker(
      n, threads, options.stop, [&](size_t worker, size_t i) -> Status {
        KnnSearchContext& ctx = ctxs[worker];
        LOFKIT_RETURN_IF_ERROR(index.Query(
            data.point(i), min_pts, static_cast<uint32_t>(i), ctx));
        const auto neighborhood = ctx.results();
        double sum = 0.0;
        for (const Neighbor& o : neighborhood) {
          sum += options.use_reachability
                     ? std::max(k_distance[o.index], o.distance)
                     : o.distance;
        }
        if (sum > 0.0) {
          scores.lrd[i] = static_cast<double>(neighborhood.size()) / sum;
        } else {
          scores.lrd[i] = std::numeric_limits<double>::infinity();
        }
        return Status::OK();
      }));
  scores.has_infinite_lrd =
      std::any_of(scores.lrd.begin(), scores.lrd.end(),
                  [](double lrd) { return std::isinf(lrd); });
  lrd_span.End();
  scores.phase_times.lrd_seconds = watch.ElapsedSeconds();
  watch.Reset();

  // LOF pass, third and last round of queries.
  TraceRecorder::Span lof_span(trace, "lof");
  LOFKIT_RETURN_IF_ERROR(ParallelForWorker(
      n, threads, options.stop, [&](size_t worker, size_t i) -> Status {
        KnnSearchContext& ctx = ctxs[worker];
        LOFKIT_RETURN_IF_ERROR(index.Query(
            data.point(i), min_pts, static_cast<uint32_t>(i), ctx));
        const auto neighborhood = ctx.results();
        const double lrd_i = scores.lrd[i];
        double sum = 0.0;
        for (const Neighbor& o : neighborhood) {
          const double lrd_o = scores.lrd[o.index];
          if (std::isinf(lrd_o) && std::isinf(lrd_i)) {
            sum += 1.0;
          } else {
            sum += lrd_o / lrd_i;
          }
        }
        scores.lof[i] = sum / static_cast<double>(neighborhood.size());
        return Status::OK();
      }));
  lof_span.End();
  scores.phase_times.lof_seconds = watch.ElapsedSeconds();
  if (options.observer.query_stats != nullptr) {
    for (const QueryStats& shard : worker_stats) {
      options.observer.query_stats->Add(shard);
    }
  }
  return scores;
}

Result<LofScores> LofComputer::ComputeFromScratch(
    const Dataset& data, const Metric& metric, size_t min_pts,
    IndexKind index_kind, bool distinct_neighbors,
    const LofComputeOptions& options) {
  std::unique_ptr<KnnIndex> index = CreateIndex(index_kind);
  if (index == nullptr) {
    return Status::Internal("index factory returned null");
  }
  Stopwatch watch;
  {
    TraceRecorder::Span span(options.observer.trace, "index_build");
    LOFKIT_RETURN_IF_ERROR(index->Build(data, metric));
  }
  const size_t budget = options.memory_budget_bytes;
  if (budget != 0 && NeighborhoodMaterializer::ProjectedBytes(
                         data.size(), min_pts) > budget) {
    if (distinct_neighbors) {
      return Status::ResourceExhausted(StrFormat(
          "materializing %zu points at min_pts=%zu exceeds the %zu-byte "
          "memory budget, and distinct-neighbors mode has no re-query "
          "fallback",
          data.size(), min_pts, budget));
    }
    LOFKIT_LOG(Warning)
        << "projected materialization ("
        << NeighborhoodMaterializer::ProjectedBytes(data.size(), min_pts)
        << " bytes) exceeds the memory budget (" << budget
        << " bytes); degrading to the re-query path";
    LOFKIT_ASSIGN_OR_RETURN(LofScores scores,
                            ComputeRequery(data, *index, min_pts, options));
    scores.degraded_to_requery = true;
    return scores;
  }
  LOFKIT_ASSIGN_OR_RETURN(
      NeighborhoodMaterializer m,
      NeighborhoodMaterializer::MaterializeParallel(
          data, *index, min_pts, options.threads, distinct_neighbors,
          options.observer, options.stop));
  const double materialize_seconds = watch.ElapsedSeconds();
  LOFKIT_ASSIGN_OR_RETURN(LofScores scores, Compute(m, min_pts, options));
  scores.phase_times.materialize_seconds = materialize_seconds;
  return scores;
}

std::vector<RankedOutlier> RankDescending(std::span<const double> scores,
                                          size_t top_n) {
  std::vector<RankedOutlier> ranked(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    ranked[i] = RankedOutlier{static_cast<uint32_t>(i), scores[i]};
  }
  // NaN-aware comparator: `a.score != b.score` alone is not a strict weak
  // ordering when NaNs are present (NaN != x but neither sorts before the
  // other), which is undefined behavior in std::sort. NaNs go last, then
  // by index, making the order total and deterministic.
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedOutlier& a, const RankedOutlier& b) {
              const bool a_nan = std::isnan(a.score);
              const bool b_nan = std::isnan(b.score);
              if (a_nan != b_nan) return b_nan;
              if (!a_nan && a.score != b.score) return a.score > b.score;
              return a.index < b.index;
            });
  if (top_n > 0 && top_n < ranked.size()) {
    ranked.resize(top_n);
  }
  return ranked;
}

}  // namespace lofkit
