#include "lof/lof_computer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "lof/spill.h"

namespace lofkit {

namespace {

// Shared body of every LofComputer entry point: the three scans of the
// two-step algorithm's step 2, expressed over a DensitySubstrate so the
// materialized and re-query routes are literally the same code. A null
// `candidates` means every point gets the LOF pass; otherwise only the
// listed points do and the remaining lof slots stay quiet NaN (the
// candidate path requires a materialized substrate — the prune-first
// pipeline always has M).
Result<LofScores> ComputeLofPasses(
    const DensitySubstrate& substrate, size_t min_pts,
    const LofComputeOptions& options,
    const std::span<const uint32_t>* candidates) {
  const size_t n = substrate.size();
  const size_t threads = options.threads;
  LofScores scores;
  scores.min_pts = min_pts;
  scores.lrd.resize(n);
  scores.lof.resize(n);

  // All three passes are embarrassingly parallel: point i only reads the
  // substrate (and in the LOF pass the completed lrd array) and writes its
  // own slot, so any thread count produces bit-identical results.
  Stopwatch watch;
  TraceRecorder* trace = options.observer.trace;

  // Pass 0 (cheap): k-distances, needed for the reachability distances.
  std::vector<double> k_distance(n);
  {
    TraceRecorder::Span span(trace, "k_distance", options.observer.trace_tid);
    LOFKIT_RETURN_IF_ERROR(substrate.Scan(
        n, threads, options.stop, options.observer,
        [&](DensitySubstrate::Cursor& cursor, size_t i) -> Status {
          LOFKIT_ASSIGN_OR_RETURN(auto view,
                                  substrate.ViewOf(cursor, i, min_pts));
          k_distance[i] = view.k_distance;
          return Status::OK();
        }));
  }
  scores.phase_times.k_distance_seconds = watch.ElapsedSeconds();
  watch.Reset();

  // First scan: local reachability densities (Definition 6). A candidate's
  // LOF reads only its own lrd and its neighbors' lrds, so with a
  // candidate set the scan shrinks to that one-hop closure; other lrd
  // slots stay NaN placeholders.
  std::vector<uint32_t> lrd_points;
  if (candidates != nullptr) {
    const NeighborhoodMaterializer* m = substrate.materializer();
    if (m == nullptr) {
      return Status::Internal(
          "candidate-restricted LOF needs a materialized substrate");
    }
    std::vector<uint8_t> needed(n, 0);
    for (uint32_t i : *candidates) {
      needed[i] = 1;
      LOFKIT_ASSIGN_OR_RETURN(auto view, m->View(i, min_pts));
      for (const Neighbor& o : view.neighborhood) needed[o.index] = 1;
    }
    for (size_t i = 0; i < n; ++i) {
      if (needed[i] != 0) lrd_points.push_back(static_cast<uint32_t>(i));
    }
    std::fill(scores.lrd.begin(), scores.lrd.end(),
              std::numeric_limits<double>::quiet_NaN());
  }
  const size_t lrd_count = candidates != nullptr ? lrd_points.size() : n;
  TraceRecorder::Span lrd_span(trace, "lrd", options.observer.trace_tid);
  LOFKIT_RETURN_IF_ERROR(substrate.Scan(
      lrd_count, threads, options.stop, options.observer,
      [&](DensitySubstrate::Cursor& cursor, size_t slot) -> Status {
        const size_t i = candidates != nullptr ? lrd_points[slot] : slot;
        LOFKIT_ASSIGN_OR_RETURN(auto view,
                                substrate.ViewOf(cursor, i, min_pts));
        double sum = 0.0;
        for (const Neighbor& o : view.neighborhood) {
          // reach-dist(i, o) = max(k-distance(o), d(i, o)) (Definition 5);
          // the simplified ablation variant uses the raw distance instead.
          sum += options.use_reachability
                     ? std::max(k_distance[o.index], o.distance)
                     : o.distance;
        }
        if (sum > 0.0) {
          scores.lrd[i] =
              static_cast<double>(view.neighborhood.size()) / sum;
        } else {
          scores.lrd[i] = std::numeric_limits<double>::infinity();
        }
        return Status::OK();
      }));
  // Derived after the scan rather than inside it so workers never contend
  // on a shared flag.
  scores.has_infinite_lrd =
      std::any_of(scores.lrd.begin(), scores.lrd.end(),
                  [](double lrd) { return std::isinf(lrd); });
  lrd_span.End();
  scores.phase_times.lrd_seconds = watch.ElapsedSeconds();
  watch.Reset();

  // Second scan: LOF values (Definition 7). With a candidate set the scan
  // shrinks to the survivors; everything else stays NaN, which
  // RankDescending sorts after every real score.
  const size_t lof_count = candidates != nullptr ? candidates->size() : n;
  if (candidates != nullptr) {
    std::fill(scores.lof.begin(), scores.lof.end(),
              std::numeric_limits<double>::quiet_NaN());
  }
  TraceRecorder::Span lof_span(trace, "lof", options.observer.trace_tid);
  LOFKIT_RETURN_IF_ERROR(substrate.Scan(
      lof_count, threads, options.stop, options.observer,
      [&](DensitySubstrate::Cursor& cursor, size_t slot) -> Status {
        const size_t i =
            candidates != nullptr ? (*candidates)[slot] : slot;
        LOFKIT_ASSIGN_OR_RETURN(auto view,
                                substrate.ViewOf(cursor, i, min_pts));
        const double lrd_i = scores.lrd[i];
        double sum = 0.0;
        for (const Neighbor& o : view.neighborhood) {
          const double lrd_o = scores.lrd[o.index];
          if (std::isinf(lrd_o) && std::isinf(lrd_i)) {
            sum += 1.0;  // duplicate-degenerate convention: inf/inf := 1
          } else {
            sum += lrd_o / lrd_i;  // finite/inf -> 0, inf/finite -> inf
          }
        }
        scores.lof[i] = sum / static_cast<double>(view.neighborhood.size());
        return Status::OK();
      }));
  lof_span.End();
  scores.phase_times.lof_seconds = watch.ElapsedSeconds();
  substrate.FoldQueryStats(options.observer);
  return scores;
}

}  // namespace

Result<LofScores> LofComputer::ComputeOverSubstrate(
    const DensitySubstrate& substrate, size_t min_pts,
    const LofComputeOptions& options) {
  LOFKIT_RETURN_IF_ERROR(substrate.ValidateMinPts(min_pts));
  return ComputeLofPasses(substrate, min_pts, options,
                          /*candidates=*/nullptr);
}

Result<LofScores> LofComputer::Compute(const NeighborhoodMaterializer& m,
                                       size_t min_pts,
                                       const LofComputeOptions& options) {
  LOFKIT_ASSIGN_OR_RETURN(DensitySubstrate substrate,
                          DensitySubstrate::OverMaterialization(m));
  return ComputeOverSubstrate(substrate, min_pts, options);
}

Result<LofScores> LofComputer::ComputeForCandidates(
    const NeighborhoodMaterializer& m, size_t min_pts,
    std::span<const uint32_t> candidates, const LofComputeOptions& options) {
  if (min_pts == 0 || min_pts > m.k_max()) {
    return Status::OutOfRange(
        StrFormat("min_pts (%zu) must be in [1, k_max=%zu]", min_pts,
                  m.k_max()));
  }
  for (size_t slot = 0; slot < candidates.size(); ++slot) {
    if (candidates[slot] >= m.size()) {
      return Status::OutOfRange(
          StrFormat("candidate %u is out of range (dataset has %zu points)",
                    candidates[slot], m.size()));
    }
    if (slot > 0 && candidates[slot] <= candidates[slot - 1]) {
      return Status::InvalidArgument(
          "candidates must be strictly ascending (sorted, no duplicates)");
    }
  }
  LOFKIT_ASSIGN_OR_RETURN(DensitySubstrate substrate,
                          DensitySubstrate::OverMaterialization(m));
  return ComputeLofPasses(substrate, min_pts, options, &candidates);
}

Result<LofScores> LofComputer::ComputeRequery(
    const Dataset& data, const KnnIndex& index, size_t min_pts,
    const LofComputeOptions& options) {
  LOFKIT_ASSIGN_OR_RETURN(DensitySubstrate substrate,
                          DensitySubstrate::OverIndex(data, index));
  return ComputeOverSubstrate(substrate, min_pts, options);
}

Result<LofScores> LofComputer::ComputeFromScratch(
    const Dataset& data, const Metric& metric, size_t min_pts,
    IndexKind index_kind, bool distinct_neighbors,
    const LofComputeOptions& options) {
  std::unique_ptr<KnnIndex> index = CreateIndex(index_kind, options.ann);
  if (index == nullptr) {
    return Status::Internal("index factory returned null");
  }
  Stopwatch watch;
  {
    TraceRecorder::Span span(options.observer.trace, "index_build");
    LOFKIT_RETURN_IF_ERROR(index->Build(data, metric));
  }
  const size_t budget = options.memory_budget_bytes;
  if (budget != 0 && NeighborhoodMaterializer::ProjectedBytes(
                         data.size(), min_pts) > budget) {
    // The degradation ladder: spill M to disk and keep going (rung 2),
    // else fall back to the 3n-query re-query path (rung 3). Every rung
    // produces bit-identical score bits; only RAM and wall time differ.
    if (!options.spill_directory.empty()) {
      LOFKIT_LOG(Warning)
          << "projected materialization ("
          << NeighborhoodMaterializer::ProjectedBytes(data.size(), min_pts)
          << " bytes) exceeds the memory budget (" << budget
          << " bytes); spilling M to disk under '"
          << options.spill_directory << "'";
      auto spilled = internal_lof::SpillMaterialize(
          data, *index, min_pts, options.threads, distinct_neighbors,
          options.spill_directory, options.observer, options.stop);
      if (spilled.ok()) {
        const double materialize_seconds = watch.ElapsedSeconds();
        LOFKIT_ASSIGN_OR_RETURN(LofScores scores,
                                Compute(*spilled, min_pts, options));
        scores.phase_times.materialize_seconds = materialize_seconds;
        scores.spilled_to_disk = true;
        return scores;
      }
      const StatusCode code = spilled.status().code();
      if (code == StatusCode::kCancelled ||
          code == StatusCode::kDeadlineExceeded || distinct_neighbors) {
        // A tripped token is the caller's decision, not a disk problem;
        // and distinct mode has no re-query rung to fall through to.
        return spilled.status();
      }
      LOFKIT_LOG(Warning) << "spill to disk failed ("
                          << spilled.status().ToString()
                          << "); degrading to the re-query path";
    }
    if (distinct_neighbors) {
      return Status::ResourceExhausted(StrFormat(
          "materializing %zu points at min_pts=%zu exceeds the %zu-byte "
          "memory budget, and distinct-neighbors mode has no re-query "
          "fallback (set spill_directory to spill M to disk instead)",
          data.size(), min_pts, budget));
    }
    LOFKIT_LOG(Warning)
        << "projected materialization ("
        << NeighborhoodMaterializer::ProjectedBytes(data.size(), min_pts)
        << " bytes) exceeds the memory budget (" << budget
        << " bytes); degrading to the re-query path";
    LOFKIT_ASSIGN_OR_RETURN(LofScores scores,
                            ComputeRequery(data, *index, min_pts, options));
    scores.degraded_to_requery = true;
    return scores;
  }
  LOFKIT_ASSIGN_OR_RETURN(
      NeighborhoodMaterializer m,
      NeighborhoodMaterializer::MaterializeParallel(
          data, *index, min_pts, options.threads, distinct_neighbors,
          options.observer, options.stop));
  const double materialize_seconds = watch.ElapsedSeconds();
  LOFKIT_ASSIGN_OR_RETURN(LofScores scores, Compute(m, min_pts, options));
  scores.phase_times.materialize_seconds = materialize_seconds;
  return scores;
}

std::vector<RankedOutlier> RankDescending(std::span<const double> scores,
                                          size_t top_n) {
  std::vector<RankedOutlier> ranked(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    ranked[i] = RankedOutlier{static_cast<uint32_t>(i), scores[i]};
  }
  // NaN-aware comparator: `a.score != b.score` alone is not a strict weak
  // ordering when NaNs are present (NaN != x but neither sorts before the
  // other), which is undefined behavior in std::sort. NaNs go last, then
  // by index, making the order total and deterministic.
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedOutlier& a, const RankedOutlier& b) {
              const bool a_nan = std::isnan(a.score);
              const bool b_nan = std::isnan(b.score);
              if (a_nan != b_nan) return b_nan;
              if (!a_nan && a.score != b.score) return a.score > b.score;
              return a.index < b.index;
            });
  if (top_n > 0 && top_n < ranked.size()) {
    ranked.resize(top_n);
  }
  return ranked;
}

}  // namespace lofkit
