#include "lof/lof_computer.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace lofkit {

Result<LofScores> LofComputer::Compute(const NeighborhoodMaterializer& m,
                                       size_t min_pts,
                                       const LofComputeOptions& options) {
  if (min_pts == 0 || min_pts > m.k_max()) {
    return Status::OutOfRange(
        StrFormat("min_pts (%zu) must be in [1, k_max=%zu]", min_pts,
                  m.k_max()));
  }
  const size_t n = m.size();
  const size_t threads = options.threads;
  LofScores scores;
  scores.min_pts = min_pts;
  scores.lrd.resize(n);
  scores.lof.resize(n);

  // All three passes are embarrassingly parallel: point i only reads M (and
  // in the LOF pass the completed lrd array) and writes its own slot, so
  // any thread count produces bit-identical results.
  Stopwatch watch;
  TraceRecorder* trace = options.observer.trace;

  // Pass 0 (cheap): k-distances, needed for the reachability distances.
  std::vector<double> k_distance(n);
  {
    TraceRecorder::Span span(trace, "k_distance");
    LOFKIT_RETURN_IF_ERROR(ParallelFor(n, threads, [&](size_t i) -> Status {
      LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
      k_distance[i] = view.k_distance;
      return Status::OK();
    }));
  }
  scores.phase_times.k_distance_seconds = watch.ElapsedSeconds();
  watch.Reset();

  // First scan of M: local reachability densities (Definition 6).
  TraceRecorder::Span lrd_span(trace, "lrd");
  LOFKIT_RETURN_IF_ERROR(ParallelFor(n, threads, [&](size_t i) -> Status {
    LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
    double sum = 0.0;
    for (const Neighbor& o : view.neighborhood) {
      // reach-dist(i, o) = max(k-distance(o), d(i, o))   (Definition 5);
      // the simplified ablation variant uses the raw distance instead.
      sum += options.use_reachability
                 ? std::max(k_distance[o.index], o.distance)
                 : o.distance;
    }
    if (sum > 0.0) {
      scores.lrd[i] =
          static_cast<double>(view.neighborhood.size()) / sum;
    } else {
      scores.lrd[i] = std::numeric_limits<double>::infinity();
    }
    return Status::OK();
  }));
  // Derived after the scan rather than inside it so workers never contend
  // on a shared flag.
  scores.has_infinite_lrd =
      std::any_of(scores.lrd.begin(), scores.lrd.end(),
                  [](double lrd) { return std::isinf(lrd); });
  lrd_span.End();
  scores.phase_times.lrd_seconds = watch.ElapsedSeconds();
  watch.Reset();

  // Second scan of M: LOF values (Definition 7).
  TraceRecorder::Span lof_span(trace, "lof");
  LOFKIT_RETURN_IF_ERROR(ParallelFor(n, threads, [&](size_t i) -> Status {
    LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
    const double lrd_i = scores.lrd[i];
    double sum = 0.0;
    for (const Neighbor& o : view.neighborhood) {
      const double lrd_o = scores.lrd[o.index];
      if (std::isinf(lrd_o) && std::isinf(lrd_i)) {
        sum += 1.0;  // duplicate-degenerate convention: inf/inf := 1
      } else {
        sum += lrd_o / lrd_i;  // finite/inf -> 0, inf/finite -> inf
      }
    }
    scores.lof[i] = sum / static_cast<double>(view.neighborhood.size());
    return Status::OK();
  }));
  lof_span.End();
  scores.phase_times.lof_seconds = watch.ElapsedSeconds();
  return scores;
}

Result<LofScores> LofComputer::ComputeFromScratch(
    const Dataset& data, const Metric& metric, size_t min_pts,
    IndexKind index_kind, bool distinct_neighbors,
    const LofComputeOptions& options) {
  std::unique_ptr<KnnIndex> index = CreateIndex(index_kind);
  if (index == nullptr) {
    return Status::Internal("index factory returned null");
  }
  Stopwatch watch;
  {
    TraceRecorder::Span span(options.observer.trace, "index_build");
    LOFKIT_RETURN_IF_ERROR(index->Build(data, metric));
  }
  LOFKIT_ASSIGN_OR_RETURN(
      NeighborhoodMaterializer m,
      NeighborhoodMaterializer::MaterializeParallel(
          data, *index, min_pts, options.threads, distinct_neighbors,
          options.observer));
  const double materialize_seconds = watch.ElapsedSeconds();
  LOFKIT_ASSIGN_OR_RETURN(LofScores scores, Compute(m, min_pts, options));
  scores.phase_times.materialize_seconds = materialize_seconds;
  return scores;
}

std::vector<RankedOutlier> RankDescending(std::span<const double> scores,
                                          size_t top_n) {
  std::vector<RankedOutlier> ranked(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    ranked[i] = RankedOutlier{static_cast<uint32_t>(i), scores[i]};
  }
  // NaN-aware comparator: `a.score != b.score` alone is not a strict weak
  // ordering when NaNs are present (NaN != x but neither sorts before the
  // other), which is undefined behavior in std::sort. NaNs go last, then
  // by index, making the order total and deterministic.
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedOutlier& a, const RankedOutlier& b) {
              const bool a_nan = std::isnan(a.score);
              const bool b_nan = std::isnan(b.score);
              if (a_nan != b_nan) return b_nan;
              if (!a_nan && a.score != b.score) return a.score > b.score;
              return a.index < b.index;
            });
  if (top_n > 0 && top_n < ranked.size()) {
    ranked.resize(top_n);
  }
  return ranked;
}

}  // namespace lofkit
