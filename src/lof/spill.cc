#include "lof/spill.h"

#include <atomic>
#include <cstdio>

#include <unistd.h>

#include "common/logging.h"

namespace lofkit::internal_lof {

namespace {

// Unique per process + call: concurrent pipelines in one process get
// distinct files, and two processes sharing a spill directory cannot
// collide (the container writer's ".tmp" suffix inherits the uniqueness).
std::string MakeSpillPath(const std::string& dir) {
  static std::atomic<uint64_t> counter{0};
  return dir + "/lofkit_spill_m." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1)) + ".lofc";
}

}  // namespace

Result<NeighborhoodMaterializer> SpillMaterialize(
    const Dataset& data, const KnnIndex& index, size_t k_max, size_t threads,
    bool distinct_neighbors, const std::string& dir,
    const PipelineObserver& observer, const StopToken& stop) {
  const std::string path = MakeSpillPath(dir);
  LOFKIT_RETURN_IF_ERROR(NeighborhoodMaterializer::MaterializeToFile(
      data, index, k_max, threads, distinct_neighbors, path, observer,
      stop));
  auto m_or = NeighborhoodMaterializer::MapFromFile(path, &data);
  // Unlink win or lose: on success the mapping keeps the pages alive for
  // the materializer's lifetime; on failure the file is garbage anyway.
  std::remove(path.c_str());
  if (!m_or.ok()) return m_or.status();
  LOFKIT_LOG(Info) << "spilled M to disk under '" << dir << "' ("
                   << m_or->total_neighbor_count()
                   << " neighbor entries, served via mmap)";
  return std::move(m_or).value();
}

}  // namespace lofkit::internal_lof
