#ifndef LOFKIT_LOF_SUBSPACE_H_
#define LOFKIT_LOF_SUBSPACE_H_

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"

namespace lofkit {

/// A subspace in which a point is locally outlying, with the LOF it attains
/// there.
struct SubspaceExplanation {
  /// Dimensions of the subspace, ascending.
  std::vector<size_t> dimensions;
  /// The point's LOF computed in that projection.
  double lof = 0.0;
};

/// Options for the explanatory-subspace search.
struct SubspaceSearchOptions {
  /// MinPts used for the projected LOF computations.
  size_t min_pts = 10;
  /// Largest subspace cardinality to enumerate (the search is exhaustive
  /// over subsets up to this size, so keep it small; 1..3 is the useful
  /// range and matches the "intensional knowledge" notion of minimal
  /// outlying attribute subsets).
  size_t max_dimensions = 2;
  /// A point counts as outlying in a projection when its LOF exceeds this.
  double lof_threshold = 1.5;
  /// Normalize each projection to the unit box before computing distances
  /// (recommended whenever attributes carry different units).
  bool normalize = true;
};

/// The "intensional knowledge" question of Knorr & Ng (reference [14]),
/// which the paper's section 8 raises for LOF in high dimensions: *in which
/// (minimal) attribute subspaces is this point outlying?* Enumerates all
/// subspaces up to `max_dimensions`, computes the point's LOF in each
/// projection, and returns every subspace whose LOF clears the threshold
/// and that is *minimal* (no subset of it already explains the point).
/// Results are sorted by (size, -lof).
///
/// Exhaustive enumeration costs O(sum_k C(d, k)) projected LOF runs of
/// O(n^2) each (sequential scan), so this is meant for explaining a few
/// reported outliers, not for scoring a whole dataset; dimension is capped
/// at 30.
Result<std::vector<SubspaceExplanation>> FindOutlyingSubspaces(
    const Dataset& data, size_t point, const SubspaceSearchOptions& options);

}  // namespace lofkit

#endif  // LOFKIT_LOF_SUBSPACE_H_
