#ifndef LOFKIT_LOF_EVALUATION_H_
#define LOFKIT_LOF_EVALUATION_H_

#include <span>
#include <vector>

#include "common/result.h"

namespace lofkit {

/// Detection-quality metrics of a ranked outlier scoring against
/// ground-truth labels. The paper argues qualitatively that LOF finds local
/// outliers the global methods cannot; these metrics make that comparison
/// quantitative on the planted-outlier scenarios (see
/// bench_detection_quality).
struct DetectionQuality {
  /// Fraction of the top-n scored points that are true outliers.
  double precision_at_n = 0.0;
  /// Fraction of true outliers inside the top n.
  double recall_at_n = 0.0;
  /// Area under the ROC curve (probability that a random outlier outranks
  /// a random inlier; ties count half). 0.5 = chance, 1.0 = perfect.
  double roc_auc = 0.0;
  /// Average precision (area under the precision-recall curve, computed at
  /// each true-outlier rank).
  double average_precision = 0.0;
};

/// Evaluates `scores` (higher = more outlying) against `is_outlier`.
/// `n` is the cutoff for the @n metrics; 0 means "number of true outliers"
/// (the usual choice, making precision == recall there). Requires at least
/// one outlier and one inlier.
Result<DetectionQuality> EvaluateRanking(std::span<const double> scores,
                                         const std::vector<bool>& is_outlier,
                                         size_t n = 0);

}  // namespace lofkit

#endif  // LOFKIT_LOF_EVALUATION_H_
