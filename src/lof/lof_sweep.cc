#include "lof/lof_sweep.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace lofkit {

std::string_view LofAggregationName(LofAggregation aggregation) {
  switch (aggregation) {
    case LofAggregation::kMax:
      return "max";
    case LofAggregation::kMin:
      return "min";
    case LofAggregation::kMean:
      return "mean";
  }
  return "unknown";
}

namespace {

Status ValidateSweepRange(size_t min_pts_lb, size_t min_pts_ub) {
  if (min_pts_lb == 0 || min_pts_lb > min_pts_ub) {
    return Status::InvalidArgument(
        StrFormat("need 1 <= MinPtsLB (%zu) <= MinPtsUB (%zu)", min_pts_lb,
                  min_pts_ub));
  }
  return Status::OK();
}

// One aggregation step, shared by Run and RunRequery so the accumulation
// order (ascending MinPts) — and thus the aggregated bits — cannot drift
// between the two paths.
void AggregateStep(LofAggregation aggregation, size_t steps,
                   const std::vector<double>& lof,
                   std::vector<double>& aggregated) {
  for (size_t i = 0; i < aggregated.size(); ++i) {
    switch (aggregation) {
      case LofAggregation::kMax:
        aggregated[i] = std::max(aggregated[i], lof[i]);
        break;
      case LofAggregation::kMin:
        aggregated[i] = std::min(aggregated[i], lof[i]);
        break;
      case LofAggregation::kMean:
        aggregated[i] += lof[i] / static_cast<double>(steps);
        break;
    }
  }
}

std::vector<double> MakeAggregationIdentity(LofAggregation aggregation,
                                            size_t n) {
  switch (aggregation) {
    case LofAggregation::kMax:
      return std::vector<double>(n, -std::numeric_limits<double>::infinity());
    case LofAggregation::kMin:
      return std::vector<double>(n, std::numeric_limits<double>::infinity());
    case LofAggregation::kMean:
      break;
  }
  return std::vector<double>(n, 0.0);
}

}  // namespace

Result<LofSweepResult> LofSweep::Run(const NeighborhoodMaterializer& m,
                                     size_t min_pts_lb, size_t min_pts_ub,
                                     LofAggregation aggregation,
                                     bool keep_per_min_pts, size_t threads,
                                     const PipelineObserver& observer,
                                     const StopToken& stop) {
  LOFKIT_RETURN_IF_ERROR(ValidateSweepRange(min_pts_lb, min_pts_ub));
  if (min_pts_ub > m.k_max()) {
    return Status::OutOfRange(
        StrFormat("MinPtsUB (%zu) exceeds the materialized k_max (%zu)",
                  min_pts_ub, m.k_max()));
  }
  const size_t n = m.size();
  LofSweepResult result;
  result.min_pts_lb = min_pts_lb;
  result.min_pts_ub = min_pts_ub;
  result.aggregation = aggregation;
  const size_t steps = min_pts_ub - min_pts_lb + 1;

  // The per-MinPts computations are independent (each reads only M), so
  // they shard over the step axis; a single-step sweep has no step
  // parallelism, so the threads go into the LOF scans instead. Aggregating
  // afterwards in ascending MinPts order keeps the floating-point
  // accumulation order — and thus the result bits — identical to the
  // sequential path.
  std::vector<LofScores> per_step(steps);
  LofComputeOptions step_options;
  step_options.threads = steps == 1 ? threads : 1;
  // A single-step sweep runs on this thread, so the observer's phase spans
  // can pass straight through to Compute; a multi-step sweep records one
  // span per step on its worker's tid instead (per-phase spans from
  // concurrent steps would pile onto tid 0 and render as garbage).
  if (steps == 1) step_options.observer = observer;
  step_options.stop = stop;
  LOFKIT_RETURN_IF_ERROR(ParallelForWorker(
      steps, threads, stop, [&](size_t worker, size_t step) -> Status {
        TraceRecorder::Span span(
            steps == 1 ? nullptr : observer.trace,
            StrFormat("sweep.min_pts_%zu", min_pts_lb + step),
            static_cast<uint32_t>(worker + 1));
        LOFKIT_ASSIGN_OR_RETURN(
            per_step[step],
            LofComputer::Compute(m, min_pts_lb + step, step_options));
        return Status::OK();
      }));

  std::vector<double> aggregated = MakeAggregationIdentity(aggregation, n);
  for (LofScores& scores : per_step) {
    result.phase_times.Add(scores.phase_times);
    AggregateStep(aggregation, steps, scores.lof, aggregated);
    if (keep_per_min_pts) {
      result.per_min_pts.push_back(std::move(scores));
    }
  }
  result.aggregated = std::move(aggregated);
  return result;
}

Result<LofSweepResult> LofSweep::RunRequery(const Dataset& data,
                                            const KnnIndex& index,
                                            size_t min_pts_lb,
                                            size_t min_pts_ub,
                                            LofAggregation aggregation,
                                            size_t threads,
                                            const PipelineObserver& observer,
                                            const StopToken& stop) {
  LOFKIT_RETURN_IF_ERROR(ValidateSweepRange(min_pts_lb, min_pts_ub));
  if (min_pts_ub >= data.size()) {
    return Status::InvalidArgument(
        StrFormat("MinPtsUB (%zu) must be smaller than the dataset size "
                  "(%zu)",
                  min_pts_ub, data.size()));
  }
  const size_t n = data.size();
  LofSweepResult result;
  result.min_pts_lb = min_pts_lb;
  result.min_pts_ub = min_pts_ub;
  result.aggregation = aggregation;
  result.degraded_to_requery = true;
  const size_t steps = min_pts_ub - min_pts_lb + 1;

  LofComputeOptions step_options;
  step_options.threads = threads;
  step_options.observer = observer;
  step_options.stop = stop;
  std::vector<double> aggregated = MakeAggregationIdentity(aggregation, n);
  for (size_t step = 0; step < steps; ++step) {
    TraceRecorder::Span span(
        observer.trace, StrFormat("sweep.min_pts_%zu", min_pts_lb + step));
    LOFKIT_ASSIGN_OR_RETURN(
        LofScores scores,
        LofComputer::ComputeRequery(data, index, min_pts_lb + step,
                                    step_options));
    result.phase_times.Add(scores.phase_times);
    AggregateStep(aggregation, steps, scores.lof, aggregated);
  }
  result.aggregated = std::move(aggregated);
  return result;
}

Result<std::vector<RankedOutlier>> LofSweep::RankOutliers(
    const Dataset& data, const Metric& metric, size_t min_pts_lb,
    size_t min_pts_ub, size_t top_n, IndexKind index_kind,
    LofAggregation aggregation, size_t threads,
    const LofPipelineOptions& pipeline) {
  std::unique_ptr<KnnIndex> index = CreateIndex(index_kind);
  if (index == nullptr) {
    return Status::Internal("index factory returned null");
  }
  LOFKIT_RETURN_IF_ERROR(index->Build(data, metric));
  if (pipeline.degraded_to_requery != nullptr) {
    *pipeline.degraded_to_requery = false;
  }
  const size_t budget = pipeline.memory_budget_bytes;
  if (budget != 0 && NeighborhoodMaterializer::ProjectedBytes(
                         data.size(), min_pts_ub) > budget) {
    LOFKIT_LOG(Warning)
        << "projected materialization ("
        << NeighborhoodMaterializer::ProjectedBytes(data.size(), min_pts_ub)
        << " bytes) exceeds the memory budget (" << budget
        << " bytes); degrading the sweep to the re-query path";
    if (pipeline.degraded_to_requery != nullptr) {
      *pipeline.degraded_to_requery = true;
    }
    LOFKIT_ASSIGN_OR_RETURN(
        LofSweepResult sweep,
        RunRequery(data, *index, min_pts_lb, min_pts_ub, aggregation,
                   threads, pipeline.observer, pipeline.stop));
    return RankDescending(sweep.aggregated, top_n);
  }
  LOFKIT_ASSIGN_OR_RETURN(
      NeighborhoodMaterializer m,
      NeighborhoodMaterializer::MaterializeParallel(
          data, *index, min_pts_ub, threads, /*distinct_neighbors=*/false,
          pipeline.observer, pipeline.stop));
  LOFKIT_ASSIGN_OR_RETURN(
      LofSweepResult sweep,
      Run(m, min_pts_lb, min_pts_ub, aggregation,
          /*keep_per_min_pts=*/false, threads, pipeline.observer,
          pipeline.stop));
  return RankDescending(sweep.aggregated, top_n);
}

}  // namespace lofkit
