#include "lof/lof_sweep.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/string_util.h"

namespace lofkit {

std::string_view LofAggregationName(LofAggregation aggregation) {
  switch (aggregation) {
    case LofAggregation::kMax:
      return "max";
    case LofAggregation::kMin:
      return "min";
    case LofAggregation::kMean:
      return "mean";
  }
  return "unknown";
}

Result<LofSweepResult> LofSweep::Run(const NeighborhoodMaterializer& m,
                                     size_t min_pts_lb, size_t min_pts_ub,
                                     LofAggregation aggregation,
                                     bool keep_per_min_pts, size_t threads,
                                     const PipelineObserver& observer) {
  if (min_pts_lb == 0 || min_pts_lb > min_pts_ub) {
    return Status::InvalidArgument(
        StrFormat("need 1 <= MinPtsLB (%zu) <= MinPtsUB (%zu)", min_pts_lb,
                  min_pts_ub));
  }
  if (min_pts_ub > m.k_max()) {
    return Status::OutOfRange(
        StrFormat("MinPtsUB (%zu) exceeds the materialized k_max (%zu)",
                  min_pts_ub, m.k_max()));
  }
  const size_t n = m.size();
  LofSweepResult result;
  result.min_pts_lb = min_pts_lb;
  result.min_pts_ub = min_pts_ub;
  result.aggregation = aggregation;
  const size_t steps = min_pts_ub - min_pts_lb + 1;

  // The per-MinPts computations are independent (each reads only M), so
  // they shard over the step axis; a single-step sweep has no step
  // parallelism, so the threads go into the LOF scans instead. Aggregating
  // afterwards in ascending MinPts order keeps the floating-point
  // accumulation order — and thus the result bits — identical to the
  // sequential path.
  std::vector<LofScores> per_step(steps);
  LofComputeOptions step_options;
  step_options.threads = steps == 1 ? threads : 1;
  // A single-step sweep runs on this thread, so the observer's phase spans
  // can pass straight through to Compute; a multi-step sweep records one
  // span per step on its worker's tid instead (per-phase spans from
  // concurrent steps would pile onto tid 0 and render as garbage).
  if (steps == 1) step_options.observer = observer;
  LOFKIT_RETURN_IF_ERROR(ParallelForWorker(
      steps, threads, [&](size_t worker, size_t step) -> Status {
        TraceRecorder::Span span(
            steps == 1 ? nullptr : observer.trace,
            StrFormat("sweep.min_pts_%zu", min_pts_lb + step),
            static_cast<uint32_t>(worker + 1));
        LOFKIT_ASSIGN_OR_RETURN(
            per_step[step],
            LofComputer::Compute(m, min_pts_lb + step, step_options));
        return Status::OK();
      }));

  std::vector<double> aggregated(
      n, aggregation == LofAggregation::kMin
             ? std::numeric_limits<double>::infinity()
             : 0.0);
  if (aggregation == LofAggregation::kMax) {
    aggregated.assign(n, -std::numeric_limits<double>::infinity());
  }
  for (LofScores& scores : per_step) {
    result.phase_times.Add(scores.phase_times);
    for (size_t i = 0; i < n; ++i) {
      switch (aggregation) {
        case LofAggregation::kMax:
          aggregated[i] = std::max(aggregated[i], scores.lof[i]);
          break;
        case LofAggregation::kMin:
          aggregated[i] = std::min(aggregated[i], scores.lof[i]);
          break;
        case LofAggregation::kMean:
          aggregated[i] += scores.lof[i] / static_cast<double>(steps);
          break;
      }
    }
    if (keep_per_min_pts) {
      result.per_min_pts.push_back(std::move(scores));
    }
  }
  result.aggregated = std::move(aggregated);
  return result;
}

Result<std::vector<RankedOutlier>> LofSweep::RankOutliers(
    const Dataset& data, const Metric& metric, size_t min_pts_lb,
    size_t min_pts_ub, size_t top_n, IndexKind index_kind,
    LofAggregation aggregation, size_t threads) {
  std::unique_ptr<KnnIndex> index = CreateIndex(index_kind);
  if (index == nullptr) {
    return Status::Internal("index factory returned null");
  }
  LOFKIT_RETURN_IF_ERROR(index->Build(data, metric));
  LOFKIT_ASSIGN_OR_RETURN(
      NeighborhoodMaterializer m,
      NeighborhoodMaterializer::MaterializeParallel(data, *index, min_pts_ub,
                                                    threads));
  LOFKIT_ASSIGN_OR_RETURN(
      LofSweepResult sweep,
      Run(m, min_pts_lb, min_pts_ub, aggregation,
          /*keep_per_min_pts=*/false, threads));
  return RankDescending(sweep.aggregated, top_n);
}

}  // namespace lofkit
