#include "lof/lof_sweep.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "lof/local_scorer.h"
#include "lof/lof_pruner.h"
#include "lof/scorer_sweep.h"
#include "lof/spill.h"

namespace lofkit {

namespace {

// The LofSweep entry points are adapters over the generic ScorerSweep with
// the LOF scorer; these two converters map the scorer-agnostic result
// shape back onto the historical LOF-specific one (score = lof, density =
// lrd, the named phases back into LofPhaseTimes fields).
LofScores ToLofScores(LocalScores&& scores) {
  LofScores lof;
  lof.min_pts = scores.min_pts;
  lof.has_infinite_lrd = scores.has_infinite_density;
  lof.phase_times.k_distance_seconds = scores.PhaseSeconds("k_distance");
  lof.phase_times.lrd_seconds = scores.PhaseSeconds("lrd");
  lof.phase_times.lof_seconds = scores.PhaseSeconds("lof");
  lof.lrd = std::move(scores.density);
  lof.lof = std::move(scores.score);
  return lof;
}

LofSweepResult ToLofSweepResult(ScorerSweepResult&& sweep) {
  LofSweepResult result;
  result.min_pts_lb = sweep.min_pts_lb;
  result.min_pts_ub = sweep.min_pts_ub;
  result.aggregation = sweep.aggregation;
  result.degraded_to_requery = sweep.degraded_to_requery;
  result.phase_times.k_distance_seconds = sweep.PhaseSeconds("k_distance");
  result.phase_times.lrd_seconds = sweep.PhaseSeconds("lrd");
  result.phase_times.lof_seconds = sweep.PhaseSeconds("lof");
  result.step_seconds = std::move(sweep.step_seconds);
  result.aggregated = std::move(sweep.aggregated);
  result.per_min_pts.reserve(sweep.per_min_pts.size());
  for (LocalScores& scores : sweep.per_min_pts) {
    result.per_min_pts.push_back(ToLofScores(std::move(scores)));
  }
  return result;
}

}  // namespace

Result<LofSweepResult> LofSweep::Run(const NeighborhoodMaterializer& m,
                                     size_t min_pts_lb, size_t min_pts_ub,
                                     LofAggregation aggregation,
                                     bool keep_per_min_pts, size_t threads,
                                     const PipelineObserver& observer,
                                     const StopToken& stop) {
  LOFKIT_ASSIGN_OR_RETURN(DensitySubstrate substrate,
                          DensitySubstrate::OverMaterialization(m));
  const std::unique_ptr<LocalScorer> scorer = CreateScorer(ScorerKind::kLof);
  LocalScorerOptions options;
  options.threads = threads;
  options.observer = observer;
  options.stop = stop;
  LOFKIT_ASSIGN_OR_RETURN(
      ScorerSweepResult sweep,
      ScorerSweep::Run(substrate, *scorer, min_pts_lb, min_pts_ub,
                       aggregation, keep_per_min_pts, options));
  return ToLofSweepResult(std::move(sweep));
}

Result<LofSweepResult> LofSweep::RunPruned(const NeighborhoodMaterializer& m,
                                           size_t min_pts_lb,
                                           size_t min_pts_ub,
                                           const PruneOptions& prune,
                                           LofAggregation aggregation,
                                           size_t threads,
                                           const PipelineObserver& observer,
                                           const StopToken& stop) {
  LOFKIT_RETURN_IF_ERROR(ValidateSweepRange(min_pts_lb, min_pts_ub));
  if (min_pts_ub > m.k_max()) {
    return Status::OutOfRange(
        StrFormat("MinPtsUB (%zu) exceeds the materialized k_max (%zu)",
                  min_pts_ub, m.k_max()));
  }
  if (prune.top_n == 0) {
    return Status::InvalidArgument(
        "prune-first ranking needs top_n >= 1: without a concrete top-N "
        "there is no threshold to discard against");
  }
  const size_t n = m.size();
  const size_t steps = min_pts_ub - min_pts_lb + 1;
  LofSweepResult result;
  result.min_pts_lb = min_pts_lb;
  result.min_pts_ub = min_pts_ub;
  result.aggregation = aggregation;

  // Stage 1 (cheap): §5 bound estimates. Without a partition, one
  // range-bound computation covers every step at the cost of a single
  // step's bounds: each per-step LOF lies in the same [lower, upper], so
  // the max/min/mean aggregate does too. The partition path needs
  // Theorem 2's per-step cardinality weights (and Lemma 1's per-step
  // epsilon), so it keeps one bound computation per step, sharded over the
  // step axis exactly like Run shards the score computations.
  std::vector<LofBoundEstimate> combined;
  std::vector<size_t> per_step_tightened(steps, 0);
  if (prune.partition.empty()) {
    // Chop the range into narrow blocks: one ComputeRangeBounds call
    // bounds every step inside its block, so a block's [lower, upper]
    // brackets the block's max, min, and mean alike, and aggregating the
    // block bounds element-wise (ascending blocks, mean weighted by block
    // step count) bounds the full-range aggregate.
    const size_t width = std::max<size_t>(1, prune.bounds_block_width);
    std::vector<std::pair<size_t, size_t>> blocks;
    for (size_t lo = min_pts_lb; lo <= min_pts_ub; lo += width) {
      blocks.emplace_back(lo, std::min(lo + width - 1, min_pts_ub));
    }
    std::vector<std::vector<LofBoundEstimate>> per_block(blocks.size());
    LofPrunerOptions pruner_options;
    pruner_options.threads = blocks.size() == 1 ? threads : 1;
    pruner_options.stop = stop;
    LOFKIT_RETURN_IF_ERROR(ParallelForWorker(
        blocks.size(), threads,
        stop, [&](size_t worker, size_t block) -> Status {
          TraceRecorder::Span span(
              observer.trace,
              StrFormat("prune.bounds_range_%zu_%zu", blocks[block].first,
                        blocks[block].second),
              static_cast<uint32_t>(blocks.size() == 1 ? 0 : worker + 1));
          LOFKIT_ASSIGN_OR_RETURN(
              per_block[block],
              LofPruner::ComputeRangeBounds(m, blocks[block].first,
                                            blocks[block].second,
                                            pruner_options));
          return Status::OK();
        }));
    std::vector<double> agg_lower = MakeAggregationIdentity(aggregation, n);
    std::vector<double> agg_upper = MakeAggregationIdentity(aggregation, n);
    for (size_t block = 0; block < blocks.size(); ++block) {
      const double weight =
          static_cast<double>(blocks[block].second - blocks[block].first + 1) /
          static_cast<double>(steps);
      for (size_t i = 0; i < n; ++i) {
        const LofBoundEstimate& b = per_block[block][i];
        switch (aggregation) {
          case LofAggregation::kMax:
            agg_lower[i] = std::max(agg_lower[i], b.lower);
            agg_upper[i] = std::max(agg_upper[i], b.upper);
            break;
          case LofAggregation::kMin:
            agg_lower[i] = std::min(agg_lower[i], b.lower);
            agg_upper[i] = std::min(agg_upper[i], b.upper);
            break;
          case LofAggregation::kMean:
            agg_lower[i] += b.lower * weight;
            agg_upper[i] += b.upper * weight;
            break;
        }
      }
    }
    combined.resize(n);
    for (size_t i = 0; i < n; ++i) {
      combined[i] = LofBoundEstimate{agg_lower[i], agg_upper[i]};
    }
  } else {
    std::vector<std::vector<LofBoundEstimate>> per_step_bounds(steps);
    const bool lemma1_enabled =
        prune.data != nullptr && prune.metric != nullptr;
    LofPrunerOptions pruner_options;
    pruner_options.threads = steps == 1 ? threads : 1;
    pruner_options.stop = stop;
    pruner_options.partition = prune.partition;
    LOFKIT_RETURN_IF_ERROR(ParallelForWorker(
        steps, threads, stop, [&](size_t worker, size_t step) -> Status {
          TraceRecorder::Span span(
              observer.trace,
              StrFormat("prune.bounds_min_pts_%zu", min_pts_lb + step),
              static_cast<uint32_t>(steps == 1 ? 0 : worker + 1));
          const size_t step_min_pts = min_pts_lb + step;
          LOFKIT_ASSIGN_OR_RETURN(
              per_step_bounds[step],
              LofPruner::ComputeBounds(m, step_min_pts, pruner_options));
          if (lemma1_enabled) {
            LOFKIT_ASSIGN_OR_RETURN(
                per_step_tightened[step],
                LofPruner::TightenWithLemma1(
                    *prune.data, *prune.metric, m, step_min_pts,
                    prune.partition, per_step_bounds[step],
                    prune.lemma1_max_cluster_size));
          }
          return Status::OK();
        }));

    // The ranking key is the aggregated score, so the pruning decision
    // needs bounds on the aggregate: applying the same element-wise
    // operation to the per-step lowers and uppers (in the same
    // ascending-MinPts order) yields valid bounds for max, min, and mean
    // alike.
    std::vector<double> agg_lower = MakeAggregationIdentity(aggregation, n);
    std::vector<double> agg_upper = MakeAggregationIdentity(aggregation, n);
    std::vector<double> step_values(n);
    for (size_t step = 0; step < steps; ++step) {
      for (size_t i = 0; i < n; ++i) {
        step_values[i] = per_step_bounds[step][i].lower;
      }
      AggregateStep(aggregation, steps, step_values, agg_lower);
      for (size_t i = 0; i < n; ++i) {
        step_values[i] = per_step_bounds[step][i].upper;
      }
      AggregateStep(aggregation, steps, step_values, agg_upper);
    }
    combined.resize(n);
    for (size_t i = 0; i < n; ++i) {
      combined[i] = LofBoundEstimate{agg_lower[i], agg_upper[i]};
    }
  }
  const LofPruner::TopNSelection selection =
      LofPruner::SelectTopN(combined, prune.top_n);

  result.prune.applied = true;
  result.prune.total_points = n;
  result.prune.survivors = selection.survivors.size();
  result.prune.threshold = selection.threshold;
  result.prune.full_evaluations = selection.survivors.size() * steps;
  result.prune.pruned_evaluations =
      (n - selection.survivors.size()) * steps;
  for (size_t count : per_step_tightened) {
    result.prune.lemma1_tightened += count;
  }

  // Stage 2 (expensive): full LOF, but only for the survivors. Same step
  // sharding and observer routing as ScorerSweep::Run: every step records
  // a sweep.min_pts_<m> span, and multi-step sweeps redirect it (plus the
  // nested phase spans, via trace_tid) onto the step worker's track.
  std::vector<LofScores> per_step(steps);
  result.step_seconds.assign(steps, 0.0);
  LOFKIT_RETURN_IF_ERROR(ParallelForWorker(
      steps, threads, stop, [&](size_t worker, size_t step) -> Status {
        const uint32_t tid = steps == 1
                                 ? observer.trace_tid
                                 : static_cast<uint32_t>(worker + 1);
        TraceRecorder::Span span(
            observer.trace,
            StrFormat("sweep.min_pts_%zu", min_pts_lb + step), tid);
        LofComputeOptions step_options;
        step_options.threads = steps == 1 ? threads : 1;
        step_options.observer = observer;
        step_options.observer.trace_tid = tid;
        if (steps != 1) {
          step_options.observer.query_stats = nullptr;
          step_options.observer.flight = nullptr;
        }
        step_options.stop = stop;
        const auto step_start = std::chrono::steady_clock::now();
        LOFKIT_ASSIGN_OR_RETURN(
            per_step[step],
            LofComputer::ComputeForCandidates(
                m, min_pts_lb + step, selection.survivors, step_options));
        result.step_seconds[step] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          step_start)
                .count();
        if (observer.progress != nullptr) observer.progress->Add(n);
        return Status::OK();
      }));

  // Survivor slots aggregate exactly as in Run; pruned slots stay NaN so
  // RankDescending sorts them after every evaluated point.
  std::vector<double> aggregated(
      n, std::numeric_limits<double>::quiet_NaN());
  const std::vector<double> identity =
      MakeAggregationIdentity(aggregation, 1);
  for (uint32_t i : selection.survivors) aggregated[i] = identity[0];
  for (LofScores& scores : per_step) {
    result.phase_times.Add(scores.phase_times);
    AggregateStepSparse(aggregation, steps, scores.lof, selection.survivors,
                        aggregated);
  }
  result.aggregated = std::move(aggregated);
  return result;
}

Result<LofSweepResult> LofSweep::RunRequery(const Dataset& data,
                                            const KnnIndex& index,
                                            size_t min_pts_lb,
                                            size_t min_pts_ub,
                                            LofAggregation aggregation,
                                            size_t threads,
                                            const PipelineObserver& observer,
                                            const StopToken& stop) {
  // Validate before constructing the substrate so the historical error
  // text (and its precedence over the empty-dataset case) is preserved.
  LOFKIT_RETURN_IF_ERROR(ValidateSweepRange(min_pts_lb, min_pts_ub));
  if (min_pts_ub >= data.size()) {
    return Status::InvalidArgument(
        StrFormat("MinPtsUB (%zu) must be smaller than the dataset size "
                  "(%zu)",
                  min_pts_ub, data.size()));
  }
  LOFKIT_ASSIGN_OR_RETURN(DensitySubstrate substrate,
                          DensitySubstrate::OverIndex(data, index));
  const std::unique_ptr<LocalScorer> scorer = CreateScorer(ScorerKind::kLof);
  LocalScorerOptions options;
  options.threads = threads;
  options.observer = observer;
  options.stop = stop;
  LOFKIT_ASSIGN_OR_RETURN(
      ScorerSweepResult sweep,
      ScorerSweep::Run(substrate, *scorer, min_pts_lb, min_pts_ub,
                       aggregation, /*keep_per_min_pts=*/false, options));
  return ToLofSweepResult(std::move(sweep));
}

Result<std::vector<RankedOutlier>> LofSweep::RankOutliers(
    const Dataset& data, const Metric& metric, size_t min_pts_lb,
    size_t min_pts_ub, size_t top_n, IndexKind index_kind,
    LofAggregation aggregation, size_t threads,
    const LofPipelineOptions& pipeline) {
  const bool approximate =
      index_kind == IndexKind::kRkdForest &&
      (pipeline.ann.search.checks != 0 || pipeline.ann.search.eps > 0.0);
  if (pipeline.prune && approximate) {
    // The §5 bound certificates are derived from exact k-distance
    // neighborhoods; over approximate ones a "certified" discard could
    // drop a true top-N outlier with no warning. Refuse the combination
    // rather than silently weakening the certificate.
    return Status::InvalidArgument(
        "prune-first ranking requires exact neighborhoods: the section-5 "
        "bound certificates are unsound over approximate kNN results; use "
        "an exact engine, or rkd_forest with checks=0 and eps=0");
  }
  std::unique_ptr<KnnIndex> index = CreateIndex(index_kind, pipeline.ann);
  if (index == nullptr) {
    return Status::Internal("index factory returned null");
  }
  LOFKIT_RETURN_IF_ERROR(index->Build(data, metric));
  if (pipeline.degraded_to_requery != nullptr) {
    *pipeline.degraded_to_requery = false;
  }
  if (pipeline.prune_summary != nullptr) {
    *pipeline.prune_summary = LofSweepResult::PruneSummary{};
  }
  if (pipeline.prune && top_n == 0) {
    return Status::InvalidArgument(
        "prune-first ranking needs top_n >= 1: without a concrete top-N "
        "there is no threshold to discard against");
  }
  if (pipeline.spilled_to_disk != nullptr) {
    *pipeline.spilled_to_disk = false;
  }
  const size_t budget = pipeline.memory_budget_bytes;
  std::optional<NeighborhoodMaterializer> m;
  if (budget != 0 && NeighborhoodMaterializer::ProjectedBytes(
                         data.size(), min_pts_ub) > budget) {
    // Rung 2 of the ladder: spill M to a temporary container file and
    // serve it via mmap. Unlike the re-query rung this keeps a real M, so
    // the prune-first path stays available; the ranking bits are identical
    // on every rung either way.
    if (!pipeline.spill_directory.empty()) {
      LOFKIT_LOG(Warning)
          << "projected materialization ("
          << NeighborhoodMaterializer::ProjectedBytes(data.size(),
                                                      min_pts_ub)
          << " bytes) exceeds the memory budget (" << budget
          << " bytes); spilling M to disk under '"
          << pipeline.spill_directory << "'";
      auto spilled = internal_lof::SpillMaterialize(
          data, *index, min_pts_ub, threads, /*distinct_neighbors=*/false,
          pipeline.spill_directory, pipeline.observer, pipeline.stop);
      if (spilled.ok()) {
        m.emplace(std::move(spilled).value());
        if (pipeline.spilled_to_disk != nullptr) {
          *pipeline.spilled_to_disk = true;
        }
      } else {
        const StatusCode code = spilled.status().code();
        if (code == StatusCode::kCancelled ||
            code == StatusCode::kDeadlineExceeded) {
          return spilled.status();
        }
        LOFKIT_LOG(Warning) << "spill to disk failed ("
                            << spilled.status().ToString()
                            << "); degrading to the re-query path";
      }
    }
    if (!m.has_value()) {
      LOFKIT_LOG(Warning)
          << "projected materialization ("
          << NeighborhoodMaterializer::ProjectedBytes(data.size(),
                                                      min_pts_ub)
          << " bytes) exceeds the memory budget (" << budget
          << " bytes); degrading the sweep to the re-query path";
      if (pipeline.degraded_to_requery != nullptr) {
        *pipeline.degraded_to_requery = true;
      }
      if (pipeline.prune) {
        // The re-query path never materializes M, and the bound estimates
        // read it; score bits are identical either way, so degrade to the
        // full (unpruned) evaluation rather than failing the run.
        LOFKIT_LOG(Warning)
            << "prune-first ranking requires the materialized path; the "
               "memory budget forced re-query mode, so every point gets the "
               "full LOF evaluation";
      }
      LOFKIT_ASSIGN_OR_RETURN(
          LofSweepResult sweep,
          RunRequery(data, *index, min_pts_lb, min_pts_ub, aggregation,
                     threads, pipeline.observer, pipeline.stop));
      return RankDescending(sweep.aggregated, top_n);
    }
  }
  if (!m.has_value()) {
    auto m_or = NeighborhoodMaterializer::MaterializeParallel(
        data, *index, min_pts_ub, threads, /*distinct_neighbors=*/false,
        pipeline.observer, pipeline.stop);
    if (!m_or.ok()) return m_or.status();
    m.emplace(std::move(m_or).value());
  }
  if (pipeline.prune) {
    PruneOptions prune;
    prune.top_n = top_n;
    prune.partition = pipeline.prune_partition;
    if (!pipeline.prune_partition.empty()) {
      prune.data = &data;
      prune.metric = &metric;
    }
    LOFKIT_ASSIGN_OR_RETURN(
        LofSweepResult sweep,
        RunPruned(*m, min_pts_lb, min_pts_ub, prune, aggregation, threads,
                  pipeline.observer, pipeline.stop));
    if (pipeline.prune_summary != nullptr) {
      *pipeline.prune_summary = sweep.prune;
    }
    return RankDescending(sweep.aggregated, top_n);
  }
  LOFKIT_ASSIGN_OR_RETURN(
      LofSweepResult sweep,
      Run(*m, min_pts_lb, min_pts_ub, aggregation,
          /*keep_per_min_pts=*/false, threads, pipeline.observer,
          pipeline.stop));
  return RankDescending(sweep.aggregated, top_n);
}

}  // namespace lofkit
