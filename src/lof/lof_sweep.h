#ifndef LOFKIT_LOF_LOF_SWEEP_H_
#define LOFKIT_LOF_LOF_SWEEP_H_

#include <vector>

#include "common/result.h"
#include "lof/lof_computer.h"

namespace lofkit {

/// How to aggregate LOF values over a MinPts range (section 6.2). The paper
/// proposes the maximum ("to highlight the instance at which the object is
/// the most outlying") and argues the minimum can erase outliers and the
/// mean can dilute them; all three are provided so that the ablation bench
/// can demonstrate exactly that.
enum class LofAggregation { kMax, kMin, kMean };

/// Canonical name for an aggregation ("max", "min", "mean").
std::string_view LofAggregationName(LofAggregation aggregation);

/// Result of a MinPts-range sweep.
struct LofSweepResult {
  size_t min_pts_lb = 0;
  size_t min_pts_ub = 0;
  LofAggregation aggregation = LofAggregation::kMax;

  /// Aggregated score per point — the paper's ranking key
  /// max{ LOF_MinPts(p) : MinPtsLB <= MinPts <= MinPtsUB } for kMax.
  std::vector<double> aggregated;

  /// Per-MinPts scores (index 0 is MinPtsLB), kept only when requested.
  std::vector<LofScores> per_min_pts;

  /// Per-phase seconds summed over every MinPts step (CPU-time-like when
  /// the steps ran in parallel: each step's own wall clock is added).
  LofPhaseTimes phase_times;

  /// True when the sweep ran on the bounded-memory re-query path (memory
  /// budget forced degradation). The aggregated bits are identical either
  /// way.
  bool degraded_to_requery = false;
};

/// Robustness knobs for LofSweep::RankOutliers, all defaulted to "off".
struct LofPipelineOptions {
  /// Cancellation/deadline token, polled throughout the pipeline.
  StopToken stop;

  /// Memory budget for M in bytes (0 = unlimited); a projected overflow
  /// degrades the sweep to RunRequery instead of failing.
  size_t memory_budget_bytes = 0;

  /// Observability hooks, forwarded into materialization and sweep.
  PipelineObserver observer;

  /// When non-null, set to whether the budget forced the re-query path.
  bool* degraded_to_requery = nullptr;
};

/// The MinPts-range heuristic of section 6.2: computes LOF for every
/// MinPts in [MinPtsLB, MinPtsUB] over one materialization database and
/// aggregates per point.
class LofSweep {
 public:
  /// Requires 1 <= min_pts_lb <= min_pts_ub <= m.k_max(). Set
  /// `keep_per_min_pts` to retain each individual LofScores (needed by the
  /// figure-7/8 experiments; costs (ub-lb+1) * n doubles).
  ///
  /// `threads` shards the independent per-MinPts computations (0 = one
  /// worker per hardware thread, 1 = sequential); a single-step sweep
  /// instead forwards the threads into the LOF scans themselves.
  /// Aggregation always runs in ascending MinPts order afterwards, so every
  /// thread count produces bit-identical results.
  ///
  /// `observer.trace` receives one span per MinPts step (on the worker's
  /// tid); a single-step sweep instead forwards the observer into the LOF
  /// scans so the k-distance/LRD/LOF phases appear individually.
  static Result<LofSweepResult> Run(const NeighborhoodMaterializer& m,
                                    size_t min_pts_lb, size_t min_pts_ub,
                                    LofAggregation aggregation =
                                        LofAggregation::kMax,
                                    bool keep_per_min_pts = false,
                                    size_t threads = 1,
                                    const PipelineObserver& observer = {},
                                    const StopToken& stop = {});

  /// Bounded-memory sweep: no materialization database — every MinPts step
  /// runs LofComputer::ComputeRequery against the prebuilt `index`,
  /// sequentially in ascending MinPts order (`threads` goes into each
  /// step's scans instead of across steps), so peak memory stays at a few
  /// n-sized arrays regardless of the range width. Aggregation order — and
  /// therefore every aggregated bit — matches Run over a materialized M.
  /// keep_per_min_pts is deliberately absent: retaining every step's scores
  /// would defeat the bounded-memory point.
  static Result<LofSweepResult> RunRequery(
      const Dataset& data, const KnnIndex& index, size_t min_pts_lb,
      size_t min_pts_ub, LofAggregation aggregation = LofAggregation::kMax,
      size_t threads = 1, const PipelineObserver& observer = {},
      const StopToken& stop = {});

  /// Convenience single-call pipeline: index, materialize at min_pts_ub,
  /// sweep, and return the ranking of the `top_n` strongest outliers
  /// (top_n == 0 ranks everything). `threads` drives both the
  /// materialization queries and the sweep, with the same determinism
  /// guarantee as Run — including across the budget-degraded re-query
  /// route, which returns identical ranking bits.
  static Result<std::vector<RankedOutlier>> RankOutliers(
      const Dataset& data, const Metric& metric, size_t min_pts_lb,
      size_t min_pts_ub, size_t top_n = 0,
      IndexKind index_kind = IndexKind::kLinearScan,
      LofAggregation aggregation = LofAggregation::kMax, size_t threads = 1,
      const LofPipelineOptions& pipeline = {});
};

}  // namespace lofkit

#endif  // LOFKIT_LOF_LOF_SWEEP_H_
