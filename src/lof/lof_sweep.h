#ifndef LOFKIT_LOF_LOF_SWEEP_H_
#define LOFKIT_LOF_LOF_SWEEP_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lof/lof_computer.h"
#include "lof/score_aggregation.h"

namespace lofkit {

/// Result of a MinPts-range sweep.
struct LofSweepResult {
  size_t min_pts_lb = 0;
  size_t min_pts_ub = 0;
  LofAggregation aggregation = LofAggregation::kMax;

  /// What the prune-first stage did (all zeros unless RunPruned produced
  /// this result).
  struct PruneSummary {
    /// True when the §5 bound-based pruning stage actually ran. False from
    /// Run/RunRequery, and from RankOutliers when a memory budget degraded
    /// the pipeline to the re-query path (which has no bound stage).
    bool applied = false;
    size_t total_points = 0;

    /// Points whose upper bound did not fall below the top-N threshold;
    /// only these received the full LOF evaluation.
    size_t survivors = 0;

    /// The N-th largest aggregated lower bound used for discarding.
    double threshold = 0.0;

    /// LOF point-evaluations performed vs. avoided, summed over the MinPts
    /// steps: full = survivors * steps, pruned = (total - survivors) * steps.
    size_t full_evaluations = 0;
    size_t pruned_evaluations = 0;

    /// Bounds tightened by Lemma-1 cluster certificates (0 when no
    /// partition/dataset was supplied), summed over steps.
    size_t lemma1_tightened = 0;

    double survivor_fraction() const {
      return total_points == 0
                 ? 1.0
                 : static_cast<double>(survivors) /
                       static_cast<double>(total_points);
    }
  };
  PruneSummary prune;

  /// Aggregated score per point — the paper's ranking key
  /// max{ LOF_MinPts(p) : MinPtsLB <= MinPts <= MinPtsUB } for kMax.
  std::vector<double> aggregated;

  /// Per-MinPts scores (index 0 is MinPtsLB), kept only when requested.
  std::vector<LofScores> per_min_pts;

  /// Per-phase seconds summed over every MinPts step (CPU-time-like when
  /// the steps ran in parallel: each step's own wall clock is added).
  LofPhaseTimes phase_times;

  /// Wall seconds of each MinPts step (index 0 is MinPtsLB). Parallel
  /// steps overlap, so these do not sum to the sweep's wall time.
  std::vector<double> step_seconds;

  /// True when the sweep ran on the bounded-memory re-query path (memory
  /// budget forced degradation). The aggregated bits are identical either
  /// way.
  bool degraded_to_requery = false;
};

/// Robustness knobs for LofSweep::RankOutliers, all defaulted to "off".
struct LofPipelineOptions {
  /// Cancellation/deadline token, polled throughout the pipeline.
  StopToken stop;

  /// Memory budget for M in bytes (0 = unlimited); a projected overflow
  /// walks the degradation ladder — spill M to disk and keep going (when
  /// `spill_directory` is set), else degrade the sweep to RunRequery —
  /// instead of failing. Every rung ranks bit-identically.
  size_t memory_budget_bytes = 0;

  /// Directory for the ladder's spill rung (empty = spilling disabled):
  /// on a projected overflow M is streamed into a temporary container
  /// file here and served zero-copy via mmap, so the sweep — including
  /// the prune-first path, which the re-query rung cannot run — proceeds
  /// with the RAM cost of one build window. A failed spill falls through
  /// to re-query (cancellation/deadline trips propagate).
  std::string spill_directory;

  /// Observability hooks, forwarded into materialization and sweep.
  PipelineObserver observer;

  /// When non-null, set to whether the budget forced the re-query path.
  bool* degraded_to_requery = nullptr;

  /// When non-null, set to whether the budget spilled M to disk.
  bool* spilled_to_disk = nullptr;

  /// Run the §5 prune-first top-N path (RunPruned) instead of the full
  /// sweep. Requires top_n >= 1; the ranking stays bit-identical to the
  /// unpruned pipeline. Ignored (with a logged warning) when the memory
  /// budget degrades to the re-query path, which has no materialization to
  /// compute bounds from.
  bool prune = false;

  /// Optional partition for the pruning stage: group ids (>= 0, one per
  /// point) switch the bound estimates from Theorem 1 to the tighter
  /// partition-aware Theorem 2 and enable Lemma-1 cluster certificates.
  std::span<const int> prune_partition;

  /// When non-null, receives what the pruning stage did.
  LofSweepResult::PruneSummary* prune_summary = nullptr;

  /// Construction options for the approximate engines, forwarded by
  /// RankOutliers when index_kind names one (kRkdForest); exact engines
  /// ignore them. Note `prune` refuses a non-exact dial: the §5 bound
  /// certificates assume exact neighborhoods (see RankOutliers).
  AnnIndexOptions ann;
};

/// The MinPts-range heuristic of section 6.2: computes LOF for every
/// MinPts in [MinPtsLB, MinPtsUB] over one materialization database and
/// aggregates per point.
class LofSweep {
 public:
  /// Requires 1 <= min_pts_lb <= min_pts_ub <= m.k_max(). Set
  /// `keep_per_min_pts` to retain each individual LofScores (needed by the
  /// figure-7/8 experiments; costs (ub-lb+1) * n doubles).
  ///
  /// `threads` shards the independent per-MinPts computations (0 = one
  /// worker per hardware thread, 1 = sequential); a single-step sweep
  /// instead forwards the threads into the LOF scans themselves.
  /// Aggregation always runs in ascending MinPts order afterwards, so every
  /// thread count produces bit-identical results.
  ///
  /// `observer.trace` receives one span per MinPts step (on the worker's
  /// tid); a single-step sweep instead forwards the observer into the LOF
  /// scans so the k-distance/LRD/LOF phases appear individually.
  static Result<LofSweepResult> Run(const NeighborhoodMaterializer& m,
                                    size_t min_pts_lb, size_t min_pts_ub,
                                    LofAggregation aggregation =
                                        LofAggregation::kMax,
                                    bool keep_per_min_pts = false,
                                    size_t threads = 1,
                                    const PipelineObserver& observer = {},
                                    const StopToken& stop = {});

  /// Knobs for the prune-first sweep (RunPruned).
  struct PruneOptions {
    /// How many top outliers the ranking must preserve exactly. Must be
    /// >= 1: pruning is only sound against a concrete top-N threshold.
    size_t top_n = 0;

    /// Optional group ids (>= 0, one per point): Theorem-2 bounds instead
    /// of Theorem 1, and — together with `data`/`metric` — Lemma-1
    /// certificates for deep cluster members.
    std::span<const int> partition;

    /// When both are non-null and `partition` is non-empty, each step's
    /// bounds are tightened with Lemma-1 cluster certificates before the
    /// pruning decision.
    const Dataset* data = nullptr;
    const Metric* metric = nullptr;

    /// Clusters larger than this skip the O(|C|^2) Lemma-1 epsilon.
    size_t lemma1_max_cluster_size = 512;

    /// Width of the MinPts blocks the unpartitioned bound stage covers
    /// with one LofPruner::ComputeRangeBounds call each (clamped to >= 1).
    /// Wider blocks make the bound stage cheaper but looser — the range
    /// bounds couple the block-low k-distances against the block-high
    /// ones, so the slack grows with the k-distance spread inside a block.
    /// 5 keeps the spread (~(hi/lo)^(1/d) per block in d dimensions) small
    /// enough to prune aggressively at ~1/5 of the per-step bound cost.
    /// Ignored on the partition path, which needs per-step bounds anyway
    /// (Theorem 2's cardinality weights and Lemma 1's epsilon are
    /// per-MinPts quantities).
    size_t bounds_block_width = 5;
  };

  /// The paper's §5 / Fig. 11 prune-first top-N sweep: bound estimates
  /// (LofPruner) are aggregated across the MinPts range with the same
  /// element-wise operation as the scores — block-wise range bounds on the
  /// unpartitioned path, per-step Theorem-2/Lemma-1 bounds with a
  /// partition — the top_n-th largest
  /// aggregated lower bound becomes the discard threshold, and only the
  /// surviving points get the full LOF evaluation
  /// (LofComputer::ComputeForCandidates). Survivor slots of `aggregated`
  /// are bit-identical to Run's at every thread count (same per-step
  /// values, same ascending-MinPts accumulation); pruned slots are quiet
  /// NaN, which RankDescending sorts last — so ranking the result's
  /// aggregated array yields the exact unpruned top-N. The result's
  /// `prune` summary reports survivors/threshold/avoided evaluations.
  static Result<LofSweepResult> RunPruned(
      const NeighborhoodMaterializer& m, size_t min_pts_lb,
      size_t min_pts_ub, const PruneOptions& prune,
      LofAggregation aggregation = LofAggregation::kMax, size_t threads = 1,
      const PipelineObserver& observer = {}, const StopToken& stop = {});

  /// Bounded-memory sweep: no materialization database — every MinPts step
  /// runs LofComputer::ComputeRequery against the prebuilt `index`,
  /// sequentially in ascending MinPts order (`threads` goes into each
  /// step's scans instead of across steps), so peak memory stays at a few
  /// n-sized arrays regardless of the range width. Aggregation order — and
  /// therefore every aggregated bit — matches Run over a materialized M.
  /// keep_per_min_pts is deliberately absent: retaining every step's scores
  /// would defeat the bounded-memory point.
  static Result<LofSweepResult> RunRequery(
      const Dataset& data, const KnnIndex& index, size_t min_pts_lb,
      size_t min_pts_ub, LofAggregation aggregation = LofAggregation::kMax,
      size_t threads = 1, const PipelineObserver& observer = {},
      const StopToken& stop = {});

  /// Convenience single-call pipeline: index, materialize at min_pts_ub,
  /// sweep, and return the ranking of the `top_n` strongest outliers
  /// (top_n == 0 ranks everything). `threads` drives both the
  /// materialization queries and the sweep, with the same determinism
  /// guarantee as Run — including across the budget-degraded re-query
  /// route, which returns identical ranking bits.
  static Result<std::vector<RankedOutlier>> RankOutliers(
      const Dataset& data, const Metric& metric, size_t min_pts_lb,
      size_t min_pts_ub, size_t top_n = 0,
      IndexKind index_kind = IndexKind::kLinearScan,
      LofAggregation aggregation = LofAggregation::kMax, size_t threads = 1,
      const LofPipelineOptions& pipeline = {});
};

}  // namespace lofkit

#endif  // LOFKIT_LOF_LOF_SWEEP_H_
