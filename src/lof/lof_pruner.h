#ifndef LOFKIT_LOF_LOF_PRUNER_H_
#define LOFKIT_LOF_LOF_PRUNER_H_

#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"
#include "index/neighborhood_materializer.h"
#include "lof/lof_bounds.h"

namespace lofkit {

/// Knobs for LofPruner::ComputeBounds.
struct LofPrunerOptions {
  /// Worker threads for the three bound scans (0 = one per hardware
  /// thread, 1 = sequential). Every thread count produces bit-identical
  /// bounds: each point's slot is written by exactly one worker and the
  /// extreme accumulation order inside a neighborhood never changes.
  size_t threads = 1;

  /// Cooperative cancellation/deadline token, polled at chunk boundaries.
  StopToken stop;

  /// Optional partition of the dataset into groups (>= 0 per point, one
  /// entry per point). When non-empty, each point gets the tighter
  /// Theorem-2 partition-aware bounds instead of Theorem 1; with a single
  /// group the two coincide (Corollary 1).
  std::span<const int> partition;
};

/// The cheap first pass of the paper's section-5 top-N ranking algorithm
/// (Fig. 11): per-point LOF bound estimates computed from the materialized
/// neighborhoods without ever evaluating lrd or LOF.
///
/// The reference routines in lof_bounds.h recompute the indirect extremes
/// of one point in O(MinPts^2) materialization reads; the pruner exploits
/// that a point's indirect reachability extremes are exactly the direct
/// extremes of its neighbors, so three O(n * MinPts) passes (k-distances,
/// direct extremes, neighbor-extreme folding) bound every point at once —
/// the same asymptotic cost as a single LOF scan. The produced bounds are
/// bit-identical to the reference routines (property-tested).
class LofPruner {
 public:
  /// Theorem-1 (or, with options.partition, Theorem-2) bound estimates for
  /// every point at `min_pts`. All bounds obey lower <= LOF <= upper under
  /// LofScores' duplicate conventions, including the zero-reachability
  /// degenerations (see Theorem1Bounds).
  static Result<std::vector<LofBoundEstimate>> ComputeBounds(
      const NeighborhoodMaterializer& m, size_t min_pts,
      const LofPrunerOptions& options = {});

  /// One set of bound estimates valid for EVERY MinPts in [lb, ub] — the
  /// cheap bound stage of a MinPts-range sweep. Validity: k-distance(q) is
  /// nondecreasing in k and N_k(p) is a prefix of N_ub(p), so folding
  /// reach-dists computed with the lb k-distances (for minima) and the ub
  /// k-distances (for maxima) brackets the Theorem-1 extremes of every
  /// step at once; the whole computation costs O(n * k_ub), the same as a
  /// single step's bounds, instead of once per step. Looser than the
  /// per-step ComputeBounds (and deliberately conservative in the
  /// all-duplicates degeneration, where it returns lower = 1 instead of
  /// the exact +inf, because LOF_k can be 1 at one step and +inf at
  /// another). options.partition is not supported — Theorem 2's
  /// cardinality weights are per-step quantities — and is rejected.
  static Result<std::vector<LofBoundEstimate>> ComputeRangeBounds(
      const NeighborhoodMaterializer& m, size_t min_pts_lb,
      size_t min_pts_ub, const LofPrunerOptions& options = {});

  /// Lemma-1 certificates: for every partition group of 2..max_cluster_size
  /// points that admits a Lemma-1 epsilon (positive minimum reachability),
  /// intersects the bounds of its "deep" members (all neighbors, and all
  /// their neighbors, inside the group — IsDeepInCluster) with
  /// [1/(1+eps), 1+eps]. Groups larger than `max_cluster_size` are skipped
  /// — the lemma's pairwise reach-dist extremes cost O(|C|^2) distances —
  /// as are groups whose epsilon is undefined (duplicate collapse).
  /// Returns the number of points whose bounds were tightened.
  ///
  /// Against the per-point theorem bounds ComputeBounds produces, that
  /// count is provably 0: every reach-dist in a deep point's Theorem-1
  /// extremes is a cluster-pair reach-dist, so the per-point bounds sit
  /// inside the lemma interval already. The lemma pays off in the paper's
  /// setting — cluster-level bound bookkeeping without per-point extremes
  /// — and is kept as a cross-check that per-point bounds never escape
  /// the cluster certificate.
  static Result<size_t> TightenWithLemma1(
      const Dataset& data, const Metric& metric,
      const NeighborhoodMaterializer& m, size_t min_pts,
      std::span<const int> partition, std::span<LofBoundEstimate> bounds,
      size_t max_cluster_size = 512);

  /// Outcome of the pruning decision for a top-N ranking.
  struct TopNSelection {
    /// Points whose upper bound did not fall below the threshold, in
    /// ascending index order. Only these need the full lrd/LOF evaluation;
    /// at least min(top_n, n) points always survive.
    std::vector<uint32_t> survivors;

    /// The N-th largest lower bound: every discarded point provably ranks
    /// below at least top_n other points. -infinity when nothing can be
    /// discarded (top_n == 0 or top_n >= n).
    double threshold = 0.0;
  };

  /// The section-5 pruning rule: keep a threshold equal to the top_n-th
  /// largest lower bound and discard every point whose upper bound falls
  /// strictly below it. Exactness argument: a discarded point p has
  /// LOF(p) <= upper(p) < threshold <= lower(q) <= LOF(q) for at least
  /// top_n distinct points q, so p cannot appear in the exact top-N under
  /// any tie-breaking. NaN bounds are treated conservatively (a NaN lower
  /// never raises the threshold, a NaN upper never prunes).
  static TopNSelection SelectTopN(std::span<const LofBoundEstimate> bounds,
                                  size_t top_n);
};

}  // namespace lofkit

#endif  // LOFKIT_LOF_LOF_PRUNER_H_
