#include "lof/evaluation.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace lofkit {

Result<DetectionQuality> EvaluateRanking(std::span<const double> scores,
                                         const std::vector<bool>& is_outlier,
                                         size_t n) {
  if (scores.size() != is_outlier.size()) {
    return Status::InvalidArgument(
        StrFormat("scores (%zu) and labels (%zu) disagree in size",
                  scores.size(), is_outlier.size()));
  }
  size_t positives = 0;
  for (bool b : is_outlier) {
    if (b) ++positives;
  }
  const size_t negatives = scores.size() - positives;
  if (positives == 0 || negatives == 0) {
    return Status::InvalidArgument(
        "evaluation needs at least one outlier and one inlier");
  }
  for (double s : scores) {
    if (std::isnan(s)) {
      return Status::InvalidArgument("scores must not contain NaN");
    }
  }
  if (n == 0) n = positives;
  n = std::min(n, scores.size());

  // Order indices by score descending, ties by index (deterministic).
  std::vector<uint32_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });

  DetectionQuality quality;

  // precision@n / recall@n.
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (is_outlier[order[i]]) ++hits;
  }
  quality.precision_at_n = static_cast<double>(hits) / static_cast<double>(n);
  quality.recall_at_n =
      static_cast<double>(hits) / static_cast<double>(positives);

  // ROC AUC via the rank statistic with midrank tie handling.
  {
    // Walk score groups from the top; within a tied group, each
    // outlier-inlier pair contributes 1/2.
    double auc_pairs = 0.0;
    size_t inliers_above = 0;
    size_t i = 0;
    while (i < order.size()) {
      size_t j = i;
      size_t group_pos = 0, group_neg = 0;
      while (j < order.size() && scores[order[j]] == scores[order[i]]) {
        if (is_outlier[order[j]]) {
          ++group_pos;
        } else {
          ++group_neg;
        }
        ++j;
      }
      // Pairs (outlier in this group, inlier strictly above): lost.
      // Pairs (outlier in group, inlier below): counted when we pass the
      // lower groups... accumulate directly instead:
      auc_pairs += static_cast<double>(group_pos) *
                   (static_cast<double>(negatives - inliers_above -
                                        group_neg) +
                    0.5 * static_cast<double>(group_neg));
      inliers_above += group_neg;
      i = j;
    }
    quality.roc_auc = auc_pairs / (static_cast<double>(positives) *
                                   static_cast<double>(negatives));
  }

  // Average precision at each true-outlier rank.
  {
    double sum = 0.0;
    size_t seen_outliers = 0;
    for (size_t i = 0; i < order.size(); ++i) {
      if (is_outlier[order[i]]) {
        ++seen_outliers;
        sum += static_cast<double>(seen_outliers) /
               static_cast<double>(i + 1);
      }
    }
    quality.average_precision = sum / static_cast<double>(positives);
  }
  return quality;
}

}  // namespace lofkit
