#include "lof/lof_pruner.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/fail_point.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace lofkit {

Result<std::vector<LofBoundEstimate>> LofPruner::ComputeBounds(
    const NeighborhoodMaterializer& m, size_t min_pts,
    const LofPrunerOptions& options) {
  if (min_pts == 0 || min_pts > m.k_max()) {
    return Status::OutOfRange(
        StrFormat("min_pts (%zu) must be in [1, k_max=%zu]", min_pts,
                  m.k_max()));
  }
  const size_t n = m.size();
  if (!options.partition.empty() && options.partition.size() != n) {
    return Status::InvalidArgument(
        StrFormat("partition has %zu entries, dataset has %zu",
                  options.partition.size(), n));
  }

  // Pass 0: k-distances, the ingredient of every reachability distance.
  std::vector<double> k_distance(n);
  LOFKIT_RETURN_IF_ERROR(
      ParallelFor(n, options.threads, options.stop, [&](size_t i) -> Status {
        LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
        k_distance[i] = view.k_distance;
        return Status::OK();
      }));

  // Pass 1: per-point direct reachability extremes. These double as the
  // indirect extremes of every point that has i as a neighbor: the
  // indirect reach-dist set of p restricted to neighbor q is exactly q's
  // direct reach-dist set, so pass 2 folds neighbor extremes instead of
  // re-walking O(MinPts^2) second-hop neighborhoods per point.
  std::vector<double> direct_min(n);
  std::vector<double> direct_max(n);
  LOFKIT_RETURN_IF_ERROR(
      ParallelFor(n, options.threads, options.stop, [&](size_t i) -> Status {
        LOFKIT_FAIL_POINT("pruner.bounds");
        LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
        if (view.neighborhood.empty()) {
          return Status::FailedPrecondition(
              StrFormat("point %zu has an empty materialized neighborhood; "
                        "bound estimates are undefined",
                        i));
        }
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (const Neighbor& q : view.neighborhood) {
          const double reach = std::max(k_distance[q.index], q.distance);
          lo = std::min(lo, reach);
          hi = std::max(hi, reach);
        }
        if (!(lo <= hi) || !std::isfinite(hi)) {
          return Status::FailedPrecondition(
              StrFormat("degenerate reachability extremes for point %zu", i));
        }
        direct_min[i] = lo;
        direct_max[i] = hi;
        return Status::OK();
      }));

  // Pass 2: fold neighbor extremes into per-point (or, with a partition,
  // per-group) stats and combine them with the shared section-5 bound
  // arithmetic. Group accumulation follows ascending group id (std::map),
  // the same order as the reference Theorem2Bounds, so the sums — and the
  // bound bits — are identical to the O(MinPts^2) reference routines.
  std::vector<LofBoundEstimate> bounds(n);
  LOFKIT_RETURN_IF_ERROR(
      ParallelFor(n, options.threads, options.stop, [&](size_t i) -> Status {
        LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
        if (options.partition.empty()) {
          NeighborhoodStats stats;
          stats.direct_min = direct_min[i];
          stats.direct_max = direct_max[i];
          stats.indirect_min = std::numeric_limits<double>::infinity();
          stats.indirect_max = -std::numeric_limits<double>::infinity();
          for (const Neighbor& q : view.neighborhood) {
            stats.indirect_min = std::min(stats.indirect_min,
                                          direct_min[q.index]);
            stats.indirect_max = std::max(stats.indirect_max,
                                          direct_max[q.index]);
          }
          bounds[i] = Theorem1Bounds(stats);
          return Status::OK();
        }
        std::map<int, GroupReachabilityStats> groups;
        for (const Neighbor& q : view.neighborhood) {
          const int group_id = options.partition[q.index];
          if (group_id < 0) {
            return Status::InvalidArgument(
                StrFormat("neighbor %u of point %zu has negative partition "
                          "id",
                          q.index, i));
          }
          auto [it, inserted] = groups.try_emplace(
              group_id,
              GroupReachabilityStats{
                  0, std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity()});
          GroupReachabilityStats& group = it->second;
          ++group.cardinality;
          const double reach = std::max(k_distance[q.index], q.distance);
          group.direct_min = std::min(group.direct_min, reach);
          group.direct_max = std::max(group.direct_max, reach);
          group.indirect_min = std::min(group.indirect_min,
                                        direct_min[q.index]);
          group.indirect_max = std::max(group.indirect_max,
                                        direct_max[q.index]);
        }
        std::vector<GroupReachabilityStats> flat;
        flat.reserve(groups.size());
        for (const auto& [group_id, group] : groups) {
          flat.push_back(group);
        }
        bounds[i] = CombineGroupBounds(flat, view.neighborhood.size());
        return Status::OK();
      }));
  return bounds;
}

Result<std::vector<LofBoundEstimate>> LofPruner::ComputeRangeBounds(
    const NeighborhoodMaterializer& m, size_t min_pts_lb, size_t min_pts_ub,
    const LofPrunerOptions& options) {
  if (min_pts_lb == 0 || min_pts_lb > min_pts_ub ||
      min_pts_ub > m.k_max()) {
    return Status::OutOfRange(
        StrFormat("MinPts range [%zu, %zu] must satisfy 1 <= lb <= ub <= "
                  "k_max=%zu",
                  min_pts_lb, min_pts_ub, m.k_max()));
  }
  if (!options.partition.empty()) {
    return Status::InvalidArgument(
        "range bounds do not support partitions: Theorem 2's cardinality "
        "weights are per-MinPts quantities; use ComputeBounds per step");
  }
  const size_t n = m.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Pass 0: k-distances at both ends of the range. k-distance(q) is
  // nondecreasing in k, so for any step k in [lb, ub],
  //   reach_lb(p, q) <= reach_k(p, q) <= reach_ub(p, q)
  // where reach_x uses the x-end k-distances.
  std::vector<double> k_distance_lb(n);
  std::vector<double> k_distance_ub(n);
  LOFKIT_RETURN_IF_ERROR(
      ParallelFor(n, options.threads, options.stop, [&](size_t i) -> Status {
        LOFKIT_ASSIGN_OR_RETURN(auto lo_view, m.View(i, min_pts_lb));
        LOFKIT_ASSIGN_OR_RETURN(auto hi_view, m.View(i, min_pts_ub));
        k_distance_lb[i] = lo_view.k_distance;
        k_distance_ub[i] = hi_view.k_distance;
        return Status::OK();
      }));

  // Pass 1: range-wide direct extremes. N_k(p) is a prefix of N_ub(p), so
  //   min over N_ub(p) of reach_lb  <=  direct_min at any step k, and
  //   max over N_ub(p) of reach_ub  >=  direct_max at any step k.
  std::vector<double> direct_min(n);
  std::vector<double> direct_max(n);
  LOFKIT_RETURN_IF_ERROR(
      ParallelFor(n, options.threads, options.stop, [&](size_t i) -> Status {
        LOFKIT_FAIL_POINT("pruner.bounds");
        LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts_ub));
        if (view.neighborhood.empty()) {
          return Status::FailedPrecondition(
              StrFormat("point %zu has an empty materialized neighborhood; "
                        "bound estimates are undefined",
                        i));
        }
        double lo = kInf;
        double hi = -kInf;
        for (const Neighbor& q : view.neighborhood) {
          lo = std::min(lo, std::max(k_distance_lb[q.index], q.distance));
          hi = std::max(hi, std::max(k_distance_ub[q.index], q.distance));
        }
        if (!(lo <= hi) || !std::isfinite(hi)) {
          return Status::FailedPrecondition(
              StrFormat("degenerate reachability extremes for point %zu", i));
        }
        direct_min[i] = lo;
        direct_max[i] = hi;
        return Status::OK();
      }));

  // Pass 2: fold neighbor extremes (the indirect reach-dist set at step k
  // stays inside the union of the neighbors' range-wide direct sets) and
  // combine with the Theorem-1 ratio. The degenerate cases deviate from
  // CombineGroupBounds on purpose: indirect_max == 0 here means every
  // indirect reachability is zero at EVERY step, so each step's LOF is
  // either 1 (the point is fully duplicated at that step) or +infinity
  // (some direct reach-dist is positive). Which of the two can differ per
  // step, so the only sound range lower bound is 1 — the per-step routine's
  // +infinity claim needs the step-exact direct extremes.
  std::vector<LofBoundEstimate> bounds(n);
  LOFKIT_RETURN_IF_ERROR(
      ParallelFor(n, options.threads, options.stop, [&](size_t i) -> Status {
        LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts_ub));
        double indirect_min = kInf;
        double indirect_max = -kInf;
        for (const Neighbor& q : view.neighborhood) {
          indirect_min = std::min(indirect_min, direct_min[q.index]);
          indirect_max = std::max(indirect_max, direct_max[q.index]);
        }
        LofBoundEstimate& b = bounds[i];
        if (indirect_max == 0.0) {
          b.lower = 1.0;
          b.upper = direct_max[i] == 0.0 ? 1.0 : kInf;
        } else {
          // Same arithmetic shape as CombineGroupBounds' single-group case
          // (min * (1 / max)), so with lb == ub the non-degenerate bounds
          // are bit-identical to ComputeBounds.
          b.lower = direct_min[i] * (1.0 / indirect_max);
          b.upper =
              indirect_min == 0.0 ? kInf : direct_max[i] * (1.0 / indirect_min);
        }
        return Status::OK();
      }));
  return bounds;
}

Result<size_t> LofPruner::TightenWithLemma1(
    const Dataset& data, const Metric& metric,
    const NeighborhoodMaterializer& m, size_t min_pts,
    std::span<const int> partition, std::span<LofBoundEstimate> bounds,
    size_t max_cluster_size) {
  const size_t n = m.size();
  if (partition.size() != n || bounds.size() != n) {
    return Status::InvalidArgument(
        StrFormat("partition (%zu) and bounds (%zu) must both have one "
                  "entry per point (%zu)",
                  partition.size(), bounds.size(), n));
  }
  std::map<int, std::vector<uint32_t>> clusters;
  for (size_t i = 0; i < n; ++i) {
    if (partition[i] < 0) {
      return Status::InvalidArgument(
          StrFormat("point %zu has negative partition id", i));
    }
    clusters[partition[i]].push_back(static_cast<uint32_t>(i));
  }

  // "Deep" per Lemma 1 means every neighbor, and every neighbor's
  // neighbor, stays inside the point's own group. One O(n * MinPts) pass
  // marks the first-hop condition; deep(i) then folds it over i's
  // neighbors instead of re-walking second-hop neighborhoods.
  std::vector<uint8_t> neighbors_in_own_group(n, 0);
  for (size_t i = 0; i < n; ++i) {
    LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
    bool all_inside = true;
    for (const Neighbor& q : view.neighborhood) {
      if (partition[q.index] != partition[i]) {
        all_inside = false;
        break;
      }
    }
    neighbors_in_own_group[i] = all_inside ? 1 : 0;
  }

  size_t tightened = 0;
  for (const auto& [group_id, members] : clusters) {
    if (members.size() < 2 || members.size() > max_cluster_size) continue;
    auto lemma = Lemma1Bounds(data, metric, m, members, min_pts);
    if (!lemma.ok()) {
      // Duplicate collapse (zero minimum reachability) leaves epsilon
      // undefined; the theorem-based bounds already cover those points.
      if (lemma.status().code() == StatusCode::kFailedPrecondition) continue;
      return lemma.status();
    }
    for (uint32_t i : members) {
      if (neighbors_in_own_group[i] == 0) continue;
      LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
      bool deep = true;
      for (const Neighbor& q : view.neighborhood) {
        if (neighbors_in_own_group[q.index] == 0) {
          deep = false;
          break;
        }
      }
      if (!deep) continue;
      const double lower =
          std::max(bounds[i].lower, lemma->bounds.lower);
      const double upper =
          std::min(bounds[i].upper, lemma->bounds.upper);
      if (lower != bounds[i].lower || upper != bounds[i].upper) {
        ++tightened;
      }
      bounds[i].lower = lower;
      bounds[i].upper = upper;
    }
  }
  return tightened;
}

LofPruner::TopNSelection LofPruner::SelectTopN(
    std::span<const LofBoundEstimate> bounds, size_t top_n) {
  TopNSelection selection;
  const size_t n = bounds.size();
  if (top_n == 0 || top_n >= n) {
    selection.threshold = -std::numeric_limits<double>::infinity();
    selection.survivors.resize(n);
    for (size_t i = 0; i < n; ++i) {
      selection.survivors[i] = static_cast<uint32_t>(i);
    }
    return selection;
  }
  std::vector<double> lowers(n);
  for (size_t i = 0; i < n; ++i) {
    // A NaN lower bound carries no ranking evidence; folding it to
    // -infinity keeps it from ever raising the pruning threshold.
    lowers[i] = std::isnan(bounds[i].lower)
                    ? -std::numeric_limits<double>::infinity()
                    : bounds[i].lower;
  }
  std::nth_element(lowers.begin(), lowers.begin() + (top_n - 1),
                   lowers.end(), std::greater<double>());
  selection.threshold = lowers[top_n - 1];
  for (size_t i = 0; i < n; ++i) {
    // Discard only on certain evidence: upper < threshold. NaN compares
    // false, so an undefined upper bound always survives.
    if (!(bounds[i].upper < selection.threshold)) {
      selection.survivors.push_back(static_cast<uint32_t>(i));
    }
  }
  return selection;
}

}  // namespace lofkit
