#include "lof/explain.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"

namespace lofkit {

namespace {

// JSON has no inf/nan literal; null is the lossless stand-in consumers can
// test for.
std::string JsonNumberOrNull(double value) {
  if (!std::isfinite(value)) return "null";
  return StrFormat("%.17g", value);
}

void AppendNumberArray(std::string& out, const char* key,
                       const std::vector<double>& values) {
  out += '"';
  out += key;
  out += "\": [";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonNumberOrNull(values[i]);
  }
  out += ']';
}

}  // namespace

Result<OutlierExplanation> ExplainOutlier(const Dataset& data,
                                          const NeighborhoodMaterializer& m,
                                          size_t i, size_t min_pts) {
  if (m.size() != data.size()) {
    return Status::InvalidArgument(
        "materializer and dataset have different sizes");
  }
  if (i >= data.size()) {
    return Status::NotFound(StrFormat("point index %zu out of range", i));
  }
  LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
  const size_t dim = data.dimension();
  const double count = static_cast<double>(view.neighborhood.size());

  OutlierExplanation explanation;
  explanation.neighbor_mean.assign(dim, 0.0);
  explanation.neighbor_stddev.assign(dim, 0.0);
  explanation.deviation.assign(dim, 0.0);
  explanation.contribution.assign(dim, 0.0);

  for (const Neighbor& q : view.neighborhood) {
    auto p = data.point(q.index);
    for (size_t d = 0; d < dim; ++d) {
      explanation.neighbor_mean[d] += p[d] / count;
    }
  }
  for (const Neighbor& q : view.neighborhood) {
    auto p = data.point(q.index);
    for (size_t d = 0; d < dim; ++d) {
      const double delta = p[d] - explanation.neighbor_mean[d];
      explanation.neighbor_stddev[d] += delta * delta / count;
    }
  }
  // Scale floor: 1% of the global attribute spread keeps dimensions that
  // are constant within the neighborhood from producing infinities.
  const std::vector<double> global_min = data.Min();
  const std::vector<double> global_max = data.Max();
  auto point = data.point(i);
  for (size_t d = 0; d < dim; ++d) {
    explanation.neighbor_stddev[d] = std::sqrt(explanation.neighbor_stddev[d]);
    const double global_range = global_max[d] - global_min[d];
    const double scale =
        std::max(explanation.neighbor_stddev[d], 0.01 * global_range);
    const double delta = point[d] - explanation.neighbor_mean[d];
    explanation.deviation[d] = scale > 0.0 ? std::abs(delta) / scale : 0.0;
  }
  const double total = std::accumulate(explanation.deviation.begin(),
                                       explanation.deviation.end(), 0.0);
  for (size_t d = 0; d < dim; ++d) {
    explanation.contribution[d] =
        total > 0.0 ? explanation.deviation[d] / total
                    : 1.0 / static_cast<double>(dim);
  }
  explanation.ranked_dimensions.resize(dim);
  std::iota(explanation.ranked_dimensions.begin(),
            explanation.ranked_dimensions.end(), size_t{0});
  std::sort(explanation.ranked_dimensions.begin(),
            explanation.ranked_dimensions.end(), [&](size_t a, size_t b) {
              if (explanation.contribution[a] != explanation.contribution[b]) {
                return explanation.contribution[a] >
                       explanation.contribution[b];
              }
              return a < b;
            });
  return explanation;
}

std::string ExplanationToJson(const OutlierExplanation& explanation,
                              size_t index, double score) {
  std::string out = "{";
  out += StrFormat("\"index\": %zu, ", index);
  out += "\"score\": ";
  out += JsonNumberOrNull(score);
  out += ", ";
  AppendNumberArray(out, "neighbor_mean", explanation.neighbor_mean);
  out += ", ";
  AppendNumberArray(out, "neighbor_stddev", explanation.neighbor_stddev);
  out += ", ";
  AppendNumberArray(out, "deviation", explanation.deviation);
  out += ", ";
  AppendNumberArray(out, "contribution", explanation.contribution);
  out += ", \"ranked_dimensions\": [";
  for (size_t i = 0; i < explanation.ranked_dimensions.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%zu", explanation.ranked_dimensions[i]);
  }
  out += "]}";
  return out;
}

}  // namespace lofkit
