#include "lof/lof_bounds.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"

namespace lofkit {

namespace {

// k-distance of point `o` (Definition 3) read from the materialization.
Result<double> KDistanceOf(const NeighborhoodMaterializer& m, size_t o,
                           size_t min_pts) {
  LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(o, min_pts));
  return view.k_distance;
}

}  // namespace

Result<NeighborhoodStats> ComputeNeighborhoodStats(
    const NeighborhoodMaterializer& m, size_t i, size_t min_pts) {
  LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
  NeighborhoodStats stats;
  stats.direct_min = std::numeric_limits<double>::infinity();
  stats.direct_max = -std::numeric_limits<double>::infinity();
  stats.indirect_min = std::numeric_limits<double>::infinity();
  stats.indirect_max = -std::numeric_limits<double>::infinity();
  for (const Neighbor& q : view.neighborhood) {
    LOFKIT_ASSIGN_OR_RETURN(const double q_kdist,
                            KDistanceOf(m, q.index, min_pts));
    const double reach = std::max(q_kdist, q.distance);
    stats.direct_min = std::min(stats.direct_min, reach);
    stats.direct_max = std::max(stats.direct_max, reach);

    LOFKIT_ASSIGN_OR_RETURN(auto q_view, m.View(q.index, min_pts));
    for (const Neighbor& o : q_view.neighborhood) {
      LOFKIT_ASSIGN_OR_RETURN(const double o_kdist,
                              KDistanceOf(m, o.index, min_pts));
      const double indirect_reach = std::max(o_kdist, o.distance);
      stats.indirect_min = std::min(stats.indirect_min, indirect_reach);
      stats.indirect_max = std::max(stats.indirect_max, indirect_reach);
    }
  }
  return stats;
}

LofBoundEstimate Theorem1Bounds(const NeighborhoodStats& stats) {
  LofBoundEstimate bounds;
  bounds.lower = stats.indirect_max > 0.0
                     ? stats.direct_min / stats.indirect_max
                     : std::numeric_limits<double>::infinity();
  bounds.upper = stats.indirect_min > 0.0
                     ? stats.direct_max / stats.indirect_min
                     : std::numeric_limits<double>::infinity();
  return bounds;
}

Result<LofBoundEstimate> Theorem2Bounds(
    const NeighborhoodMaterializer& m, size_t i, size_t min_pts,
    std::span<const int> point_partition) {
  if (point_partition.size() != m.size()) {
    return Status::InvalidArgument(
        StrFormat("partition has %zu entries, dataset has %zu",
                  point_partition.size(), m.size()));
  }
  LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));

  // Per-group reachability extremes, keyed by the neighbor's group id.
  struct GroupStats {
    size_t cardinality = 0;
    double direct_min = std::numeric_limits<double>::infinity();
    double direct_max = -std::numeric_limits<double>::infinity();
    double indirect_min = std::numeric_limits<double>::infinity();
    double indirect_max = -std::numeric_limits<double>::infinity();
  };
  std::map<int, GroupStats> groups;

  for (const Neighbor& q : view.neighborhood) {
    const int group_id = point_partition[q.index];
    if (group_id < 0) {
      return Status::InvalidArgument(
          StrFormat("neighbor %u of point %zu has negative partition id",
                    q.index, i));
    }
    GroupStats& group = groups[group_id];
    ++group.cardinality;
    LOFKIT_ASSIGN_OR_RETURN(const double q_kdist,
                            KDistanceOf(m, q.index, min_pts));
    const double reach = std::max(q_kdist, q.distance);
    group.direct_min = std::min(group.direct_min, reach);
    group.direct_max = std::max(group.direct_max, reach);

    LOFKIT_ASSIGN_OR_RETURN(auto q_view, m.View(q.index, min_pts));
    for (const Neighbor& o : q_view.neighborhood) {
      LOFKIT_ASSIGN_OR_RETURN(const double o_kdist,
                              KDistanceOf(m, o.index, min_pts));
      const double indirect_reach = std::max(o_kdist, o.distance);
      group.indirect_min = std::min(group.indirect_min, indirect_reach);
      group.indirect_max = std::max(group.indirect_max, indirect_reach);
    }
  }

  const double total = static_cast<double>(view.neighborhood.size());
  double lower_direct = 0.0;   // sum xi_i * direct^i_min
  double lower_indirect = 0.0; // sum xi_i / indirect^i_max
  double upper_direct = 0.0;   // sum xi_i * direct^i_max
  double upper_indirect = 0.0; // sum xi_i / indirect^i_min
  for (const auto& [group_id, group] : groups) {
    const double xi = static_cast<double>(group.cardinality) / total;
    lower_direct += xi * group.direct_min;
    upper_direct += xi * group.direct_max;
    lower_indirect +=
        group.indirect_max > 0.0 ? xi / group.indirect_max : 0.0;
    upper_indirect += group.indirect_min > 0.0
                          ? xi / group.indirect_min
                          : std::numeric_limits<double>::infinity();
  }
  LofBoundEstimate bounds;
  bounds.lower = lower_direct * lower_indirect;
  bounds.upper = upper_direct * upper_indirect;
  return bounds;
}

Result<Lemma1Result> Lemma1Bounds(const Dataset& data, const Metric& metric,
                                  const NeighborhoodMaterializer& m,
                                  std::span<const uint32_t> cluster,
                                  size_t min_pts) {
  if (cluster.size() < 2) {
    return Status::InvalidArgument(
        "Lemma 1 needs a cluster of at least two objects");
  }
  double reach_min = std::numeric_limits<double>::infinity();
  double reach_max = -std::numeric_limits<double>::infinity();
  std::vector<double> k_distance(cluster.size());
  for (size_t j = 0; j < cluster.size(); ++j) {
    LOFKIT_ASSIGN_OR_RETURN(k_distance[j],
                            KDistanceOf(m, cluster[j], min_pts));
  }
  for (size_t a = 0; a < cluster.size(); ++a) {
    for (size_t b = 0; b < cluster.size(); ++b) {
      if (a == b) continue;
      const double dist =
          metric.Distance(data.point(cluster[a]), data.point(cluster[b]));
      const double reach = std::max(k_distance[b], dist);
      reach_min = std::min(reach_min, reach);
      reach_max = std::max(reach_max, reach);
    }
  }
  Lemma1Result result;
  result.reach_dist_min = reach_min;
  result.reach_dist_max = reach_max;
  if (reach_min <= 0.0) {
    return Status::FailedPrecondition(
        "Lemma 1 epsilon undefined: minimum reachability distance is zero");
  }
  result.epsilon = reach_max / reach_min - 1.0;
  result.bounds.lower = 1.0 / (1.0 + result.epsilon);
  result.bounds.upper = 1.0 + result.epsilon;
  return result;
}

Result<bool> IsDeepInCluster(const NeighborhoodMaterializer& m, size_t i,
                             size_t min_pts,
                             const std::vector<bool>& in_cluster) {
  if (in_cluster.size() != m.size()) {
    return Status::InvalidArgument(
        StrFormat("in_cluster has %zu entries, dataset has %zu",
                  in_cluster.size(), m.size()));
  }
  LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
  for (const Neighbor& q : view.neighborhood) {
    if (!in_cluster[q.index]) return false;
    LOFKIT_ASSIGN_OR_RETURN(auto q_view, m.View(q.index, min_pts));
    for (const Neighbor& o : q_view.neighborhood) {
      if (!in_cluster[o.index]) return false;
    }
  }
  return true;
}

LofBoundEstimate AnalyticBounds(double direct_over_indirect, double pct) {
  const double x = pct / 100.0;
  LofBoundEstimate bounds;
  bounds.lower = direct_over_indirect * (1.0 - x) / (1.0 + x);
  bounds.upper = direct_over_indirect * (1.0 + x) / (1.0 - x);
  return bounds;
}

double AnalyticRelativeSpan(double pct) {
  const double x = pct / 100.0;
  return 4.0 * x / (1.0 - x * x);
}

}  // namespace lofkit
