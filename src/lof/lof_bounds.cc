#include "lof/lof_bounds.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"

namespace lofkit {

namespace {

// k-distance of point `o` (Definition 3) read from the materialization.
Result<double> KDistanceOf(const NeighborhoodMaterializer& m, size_t o,
                           size_t min_pts) {
  LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(o, min_pts));
  return view.k_distance;
}

}  // namespace

Result<NeighborhoodStats> ComputeNeighborhoodStats(
    const NeighborhoodMaterializer& m, size_t i, size_t min_pts) {
  LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
  if (view.neighborhood.empty()) {
    return Status::FailedPrecondition(
        StrFormat("point %zu has an empty materialized neighborhood; "
                  "reachability extremes are undefined",
                  i));
  }
  NeighborhoodStats stats;
  stats.direct_min = std::numeric_limits<double>::infinity();
  stats.direct_max = -std::numeric_limits<double>::infinity();
  stats.indirect_min = std::numeric_limits<double>::infinity();
  stats.indirect_max = -std::numeric_limits<double>::infinity();
  for (const Neighbor& q : view.neighborhood) {
    LOFKIT_ASSIGN_OR_RETURN(const double q_kdist,
                            KDistanceOf(m, q.index, min_pts));
    const double reach = std::max(q_kdist, q.distance);
    stats.direct_min = std::min(stats.direct_min, reach);
    stats.direct_max = std::max(stats.direct_max, reach);

    LOFKIT_ASSIGN_OR_RETURN(auto q_view, m.View(q.index, min_pts));
    for (const Neighbor& o : q_view.neighborhood) {
      LOFKIT_ASSIGN_OR_RETURN(const double o_kdist,
                              KDistanceOf(m, o.index, min_pts));
      const double indirect_reach = std::max(o_kdist, o.distance);
      stats.indirect_min = std::min(stats.indirect_min, indirect_reach);
      stats.indirect_max = std::max(stats.indirect_max, indirect_reach);
    }
  }
  // View guarantees non-empty neighbor lists for every q, so the extremes
  // are ordered finite values here; the negated comparisons additionally
  // catch NaN. Tripping either means a structurally broken M, which must
  // surface as an error, not as sentinel infinities inside bound ratios.
  if (!(stats.direct_min <= stats.direct_max) ||
      !(stats.indirect_min <= stats.indirect_max) ||
      !std::isfinite(stats.direct_max) || !std::isfinite(stats.indirect_max)) {
    return Status::FailedPrecondition(
        StrFormat("degenerate reachability extremes for point %zu: "
                  "direct [%g, %g], indirect [%g, %g]",
                  i, stats.direct_min, stats.direct_max, stats.indirect_min,
                  stats.indirect_max));
  }
  return stats;
}

LofBoundEstimate Theorem1Bounds(const NeighborhoodStats& stats) {
  const GroupReachabilityStats one_group{
      /*cardinality=*/1, stats.direct_min, stats.direct_max,
      stats.indirect_min, stats.indirect_max};
  return CombineGroupBounds({&one_group, 1}, 1);
}

LofBoundEstimate CombineGroupBounds(
    std::span<const GroupReachabilityStats> groups, size_t total) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double lower_direct = 0.0;   // sum xi_i * direct^i_min
  double lower_indirect = 0.0; // sum xi_i / indirect^i_max
  double upper_direct = 0.0;   // sum xi_i * direct^i_max
  double upper_indirect = 0.0; // sum xi_i / indirect^i_min
  // Tracks whether any group has a zero indirect minimum (its 1/x term is
  // unbounded) and the degeneracy extent: direct_max/indirect_max over the
  // whole neighborhood decide between the "provably +inf" and the
  // "provably exactly 1" duplicate cases.
  bool unbounded_upper = false;
  double direct_max_all = 0.0;
  double indirect_max_all = 0.0;
  for (const GroupReachabilityStats& group : groups) {
    const double xi =
        static_cast<double>(group.cardinality) / static_cast<double>(total);
    lower_direct += xi * group.direct_min;
    upper_direct += xi * group.direct_max;
    direct_max_all = std::max(direct_max_all, group.direct_max);
    indirect_max_all = std::max(indirect_max_all, group.indirect_max);
    if (group.indirect_max > 0.0) {
      lower_indirect += xi / group.indirect_max;
    }
    if (group.indirect_min > 0.0) {
      upper_indirect += xi / group.indirect_min;
    } else {
      unbounded_upper = true;
    }
  }
  LofBoundEstimate bounds;
  if (indirect_max_all == 0.0) {
    // Every indirect reachability is zero, so every neighbor's lrd is
    // infinite. A positive direct extreme leaves p's own lrd finite and
    // the exact LOF is +inf; all-zero direct reachabilities make p
    // infinitely dense too and the inf/inf := 1 convention pins LOF at
    // exactly 1. (The pre-fix fallback returned +inf for the *lower*
    // bound here unconditionally, breaking lower <= LOF for duplicates.)
    bounds.lower = direct_max_all == 0.0 ? 1.0 : kInf;
  } else {
    bounds.lower = lower_direct * lower_indirect;
  }
  if (unbounded_upper) {
    // A zero denominator must make the aggregate upper bound unbounded —
    // never drop the term (or multiply 0 * inf into NaN), which would
    // silently certify true outliers as inliers once bounds prune. The
    // only exception is the fully degenerate all-duplicates case, where
    // LOF is exactly 1 (see above).
    bounds.upper =
        direct_max_all == 0.0 && indirect_max_all == 0.0 ? 1.0 : kInf;
  } else {
    bounds.upper = upper_direct * upper_indirect;
  }
  return bounds;
}

Result<LofBoundEstimate> Theorem2Bounds(
    const NeighborhoodMaterializer& m, size_t i, size_t min_pts,
    std::span<const int> point_partition) {
  if (point_partition.size() != m.size()) {
    return Status::InvalidArgument(
        StrFormat("partition has %zu entries, dataset has %zu",
                  point_partition.size(), m.size()));
  }
  LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
  if (view.neighborhood.empty()) {
    return Status::FailedPrecondition(
        StrFormat("point %zu has an empty materialized neighborhood; "
                  "theorem-2 bounds are undefined",
                  i));
  }

  // Per-group reachability extremes, keyed by the neighbor's group id.
  struct GroupStats {
    double direct_min = std::numeric_limits<double>::infinity();
    double direct_max = -std::numeric_limits<double>::infinity();
    double indirect_min = std::numeric_limits<double>::infinity();
    double indirect_max = -std::numeric_limits<double>::infinity();
    size_t cardinality = 0;
  };
  std::map<int, GroupStats> groups;

  for (const Neighbor& q : view.neighborhood) {
    const int group_id = point_partition[q.index];
    if (group_id < 0) {
      return Status::InvalidArgument(
          StrFormat("neighbor %u of point %zu has negative partition id",
                    q.index, i));
    }
    GroupStats& group = groups[group_id];
    ++group.cardinality;
    LOFKIT_ASSIGN_OR_RETURN(const double q_kdist,
                            KDistanceOf(m, q.index, min_pts));
    const double reach = std::max(q_kdist, q.distance);
    group.direct_min = std::min(group.direct_min, reach);
    group.direct_max = std::max(group.direct_max, reach);

    LOFKIT_ASSIGN_OR_RETURN(auto q_view, m.View(q.index, min_pts));
    for (const Neighbor& o : q_view.neighborhood) {
      LOFKIT_ASSIGN_OR_RETURN(const double o_kdist,
                              KDistanceOf(m, o.index, min_pts));
      const double indirect_reach = std::max(o_kdist, o.distance);
      group.indirect_min = std::min(group.indirect_min, indirect_reach);
      group.indirect_max = std::max(group.indirect_max, indirect_reach);
    }
  }

  std::vector<GroupReachabilityStats> flat;
  flat.reserve(groups.size());
  for (const auto& [group_id, group] : groups) {
    // Every group holds at least one neighbor q, and View guarantees q's
    // own neighborhood is non-empty, so ordered extremes are an invariant;
    // an inversion means M is structurally broken and the sentinel
    // infinities must not reach the bound arithmetic.
    if (!(group.direct_min <= group.direct_max) ||
        !(group.indirect_min <= group.indirect_max)) {
      return Status::FailedPrecondition(
          StrFormat("degenerate reachability extremes for point %zu in "
                    "partition group %d",
                    i, group_id));
    }
    flat.push_back(GroupReachabilityStats{group.cardinality, group.direct_min,
                                          group.direct_max,
                                          group.indirect_min,
                                          group.indirect_max});
  }
  return CombineGroupBounds(flat, view.neighborhood.size());
}

Result<Lemma1Result> Lemma1Bounds(const Dataset& data, const Metric& metric,
                                  const NeighborhoodMaterializer& m,
                                  std::span<const uint32_t> cluster,
                                  size_t min_pts) {
  if (cluster.size() < 2) {
    return Status::InvalidArgument(
        "Lemma 1 needs a cluster of at least two objects");
  }
  double reach_min = std::numeric_limits<double>::infinity();
  double reach_max = -std::numeric_limits<double>::infinity();
  std::vector<double> k_distance(cluster.size());
  for (size_t j = 0; j < cluster.size(); ++j) {
    LOFKIT_ASSIGN_OR_RETURN(k_distance[j],
                            KDistanceOf(m, cluster[j], min_pts));
  }
  for (size_t a = 0; a < cluster.size(); ++a) {
    for (size_t b = 0; b < cluster.size(); ++b) {
      if (a == b) continue;
      const double dist =
          metric.Distance(data.point(cluster[a]), data.point(cluster[b]));
      const double reach = std::max(k_distance[b], dist);
      reach_min = std::min(reach_min, reach);
      reach_max = std::max(reach_max, reach);
    }
  }
  Lemma1Result result;
  result.reach_dist_min = reach_min;
  result.reach_dist_max = reach_max;
  if (reach_min <= 0.0) {
    return Status::FailedPrecondition(
        "Lemma 1 epsilon undefined: minimum reachability distance is zero");
  }
  result.epsilon = reach_max / reach_min - 1.0;
  result.bounds.lower = 1.0 / (1.0 + result.epsilon);
  result.bounds.upper = 1.0 + result.epsilon;
  return result;
}

Result<bool> IsDeepInCluster(const NeighborhoodMaterializer& m, size_t i,
                             size_t min_pts,
                             const std::vector<bool>& in_cluster) {
  if (in_cluster.size() != m.size()) {
    return Status::InvalidArgument(
        StrFormat("in_cluster has %zu entries, dataset has %zu",
                  in_cluster.size(), m.size()));
  }
  LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts));
  for (const Neighbor& q : view.neighborhood) {
    if (!in_cluster[q.index]) return false;
    LOFKIT_ASSIGN_OR_RETURN(auto q_view, m.View(q.index, min_pts));
    for (const Neighbor& o : q_view.neighborhood) {
      if (!in_cluster[o.index]) return false;
    }
  }
  return true;
}

LofBoundEstimate AnalyticBounds(double direct_over_indirect, double pct) {
  const double x = pct / 100.0;
  LofBoundEstimate bounds;
  bounds.lower = direct_over_indirect * (1.0 - x) / (1.0 + x);
  bounds.upper = direct_over_indirect * (1.0 + x) / (1.0 - x);
  return bounds;
}

double AnalyticRelativeSpan(double pct) {
  const double x = pct / 100.0;
  return 4.0 * x / (1.0 - x * x);
}

}  // namespace lofkit
