#ifndef LOFKIT_LOF_SCORER_SWEEP_H_
#define LOFKIT_LOF_SCORER_SWEEP_H_

#include <vector>

#include "common/result.h"
#include "index/index_factory.h"
#include "lof/local_scorer.h"
#include "lof/lof_computer.h"
#include "lof/score_aggregation.h"

namespace lofkit {

/// Result of a MinPts-range sweep of one LocalScorer.
struct ScorerSweepResult {
  size_t min_pts_lb = 0;
  size_t min_pts_ub = 0;
  LofAggregation aggregation = LofAggregation::kMax;

  /// Aggregated score per point — the section-6.2 ranking key
  /// max{ score_MinPts(p) : MinPtsLB <= MinPts <= MinPtsUB } for kMax.
  std::vector<double> aggregated;

  /// Per-MinPts scores (index 0 is MinPtsLB), kept only when requested.
  std::vector<LocalScores> per_min_pts;

  /// Per-phase seconds merged over every MinPts step (by phase name, in
  /// first-seen order; CPU-time-like when the steps ran in parallel).
  std::vector<ScorerPhase> phases;

  /// Wall seconds of each MinPts step (index 0 is MinPtsLB), on both
  /// routes — the per-step latency distribution the stats export
  /// histograms. Parallel steps overlap, so these do not sum to the
  /// sweep's wall time.
  std::vector<double> step_seconds;

  /// True when any step saw an infinite density (duplicate degeneracy).
  bool has_infinite_density = false;

  /// True when the sweep ran on the bounded-memory re-query substrate.
  /// The aggregated bits are identical either way (for scorers that read
  /// only substrate views).
  bool degraded_to_requery = false;

  /// Seconds of the named phase summed over the sweep (0 when absent).
  double PhaseSeconds(std::string_view name) const;
};

/// Robustness knobs for ScorerSweep::RankOutliers, all defaulted to "off".
/// (The scorer dials and observability hooks ride in LocalScorerOptions.)
struct ScorerPipelineOptions {
  /// Memory budget for M in bytes (0 = unlimited); a projected overflow
  /// degrades the sweep to the re-query substrate instead of failing.
  size_t memory_budget_bytes = 0;

  /// When non-null, set to whether the budget forced the re-query route.
  bool* degraded_to_requery = nullptr;

  /// Construction options for the approximate engines, forwarded when
  /// index_kind names one (kRkdForest); exact engines ignore them.
  AnnIndexOptions ann;
};

/// The section-6.2 MinPts-range heuristic, generalized to any LocalScorer:
/// scores every MinPts in [MinPtsLB, MinPtsUB] over one shared substrate
/// and aggregates per point. LofSweep::Run/RunRequery are now thin
/// adapters over this class with the LOF scorer.
class ScorerSweep {
 public:
  /// Requires 1 <= min_pts_lb <= min_pts_ub <= substrate.k_max(). On a
  /// materialized substrate the independent per-MinPts computations shard
  /// over `options.threads` workers (each step scoring a cursor-pool copy
  /// of the substrate, so the scans never contend); a single-step sweep
  /// instead forwards the threads and observer into the scorer's own
  /// scans. On a re-query substrate the steps run sequentially in
  /// ascending MinPts order (bounded memory is that route's point) with
  /// the threads and observer inside each step. Aggregation always runs in
  /// ascending MinPts order afterwards, so every thread count produces
  /// bit-identical results.
  static Result<ScorerSweepResult> Run(const DensitySubstrate& substrate,
                                       const LocalScorer& scorer,
                                       size_t min_pts_lb, size_t min_pts_ub,
                                       LofAggregation aggregation =
                                           LofAggregation::kMax,
                                       bool keep_per_min_pts = false,
                                       const LocalScorerOptions& options = {});

  /// Convenience single-call pipeline for any scorer: build the index,
  /// materialize at min_pts_ub (or degrade to the re-query substrate under
  /// a memory budget), sweep, and return the ranking of the `top_n`
  /// strongest outliers (top_n == 0 ranks everything). The substrate is
  /// always constructed with the dataset and metric, so coordinate-reading
  /// scorers (LDOF, the DB baseline) work too.
  static Result<std::vector<RankedOutlier>> RankOutliers(
      const Dataset& data, const Metric& metric, const LocalScorer& scorer,
      size_t min_pts_lb, size_t min_pts_ub, size_t top_n = 0,
      IndexKind index_kind = IndexKind::kLinearScan,
      LofAggregation aggregation = LofAggregation::kMax,
      const LocalScorerOptions& options = {},
      const ScorerPipelineOptions& pipeline = {});
};

}  // namespace lofkit

#endif  // LOFKIT_LOF_SCORER_SWEEP_H_
