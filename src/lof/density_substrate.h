#ifndef LOFKIT_LOF_DENSITY_SUBSTRATE_H_
#define LOFKIT_LOF_DENSITY_SUBSTRATE_H_

#include <algorithm>
#include <vector>

#include "common/cancellation.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"
#include "index/knn_index.h"
#include "index/neighborhood_materializer.h"

namespace lofkit {

/// The shared k-distance/neighborhood layer every local-outlier scorer
/// (LOF, LDOF, the KDE density scorer, the kNN-distance and DB baselines)
/// computes from — the part of the paper's two-step algorithm that is
/// score-agnostic. A substrate answers one question: "the k-distance and
/// k-distance neighborhood of point i" (Definitions 3 and 4, ties
/// included, sorted by (distance, index)), from either of two backends:
///
///   * materialized — reads a NeighborhoodMaterializer (step 1's database
///     M), the paper's materialize-then-scan route;
///   * re-query     — runs the kNN query per view against a prebuilt
///     index, the bounded-memory route. Query(p, k) returns exactly the
///     neighborhood View(p, k) would, so every scorer built on the
///     substrate inherits LOF's "identical bits on both routes" guarantee
///     for free.
///
/// The per-worker plumbing the scorers used to duplicate lives here once:
/// one KnnSearchContext and one QueryStats shard per ParallelForWorker
/// worker (allocated lazily, reused across scans), deterministic stats
/// folding after the parallel region, StopToken polling and the
/// "substrate.query" fail point in the re-query view path.
///
/// A substrate is a non-owning view: the materializer / dataset / index /
/// metric must outlive it. Scans on one instance must not run
/// concurrently (the cursor pool is shared state); copying a substrate
/// yields an independent pool over the same backend, which is how the
/// sweep shards MinPts steps across threads.
class DensitySubstrate {
 public:
  /// The k-distance of a point with its k-distance neighborhood.
  struct View {
    double k_distance = 0.0;
    std::span<const Neighbor> neighborhood;
  };

  /// Per-worker scan state: the kNN scratch context and a query-stats
  /// shard. Opaque to scorers — obtain views through ViewOf().
  class Cursor {
   public:
    Cursor() = default;
    Cursor(Cursor&&) noexcept = default;
    Cursor& operator=(Cursor&&) noexcept = default;
    Cursor(const Cursor&) = delete;
    Cursor& operator=(const Cursor&) = delete;

   private:
    friend class DensitySubstrate;
    KnnSearchContext ctx_;
    QueryStats stats_;
  };

  /// Substrate over a materialized M. `data`/`metric` are optional and
  /// only needed by scorers that read the original coordinates (LDOF, the
  /// DB baseline); when `data` is given its size must match `m`.
  static Result<DensitySubstrate> OverMaterialization(
      const NeighborhoodMaterializer& m, const Dataset* data = nullptr,
      const Metric* metric = nullptr);

  /// Bounded-memory substrate: no M, every view is a kNN query against
  /// `index` (which must already be built over `data`). `metric` is only
  /// needed by coordinate-reading scorers.
  static Result<DensitySubstrate> OverIndex(const Dataset& data,
                                            const KnnIndex& index,
                                            const Metric* metric = nullptr);

  /// Copying yields an independent substrate over the same backend with a
  /// fresh (empty) cursor pool — safe to scan concurrently with the
  /// original.
  DensitySubstrate(const DensitySubstrate& other)
      : m_(other.m_),
        data_(other.data_),
        index_(other.index_),
        metric_(other.metric_) {}
  DensitySubstrate& operator=(const DensitySubstrate&) = delete;
  DensitySubstrate(DensitySubstrate&&) noexcept = default;
  DensitySubstrate& operator=(DensitySubstrate&&) noexcept = default;

  /// Number of points.
  size_t size() const { return m_ != nullptr ? m_->size() : data_->size(); }

  /// Largest k a view may ask for: the materialized k_max, or n - 1 on
  /// the re-query route (every point needs k neighbors besides itself).
  size_t k_max() const {
    return m_ != nullptr ? m_->k_max() : data_->size() - 1;
  }

  /// Whether views come from a materialized M (false = re-query route).
  bool materialized() const { return m_ != nullptr; }

  /// Whether k-distinct-distance counting is in effect (a materializer
  /// feature; always false on the re-query route).
  bool distinct_neighbors() const {
    return m_ != nullptr && m_->distinct_neighbors();
  }

  /// Whether coordinate-reading scorers can run (dataset + metric given).
  bool has_coordinates() const {
    return data_ != nullptr && metric_ != nullptr;
  }

  const Dataset* data() const { return data_; }
  const Metric* metric() const { return metric_; }
  const NeighborhoodMaterializer* materializer() const { return m_; }
  const KnnIndex* index() const { return index_; }

  /// Validates a MinPts value against this substrate's backend, with the
  /// exact error text LofComputer::Compute / ComputeRequery always used.
  Status ValidateMinPts(size_t min_pts) const;

  /// The k-distance view of point i for 1 <= k (<= k_max(), enforced by
  /// ValidateMinPts on the caller's side; the materialized route
  /// re-checks via M). On the re-query route this runs one kNN query
  /// through the cursor's context — the "substrate.query" fail point is
  /// planted there.
  Result<View> ViewOf(Cursor& cursor, size_t i, size_t k) const;

  /// Runs fn(cursor, i) for every i in [0, count) sharded over `threads`
  /// ParallelForWorker workers, each with its own Cursor from the pool
  /// (grown lazily, reused across scans). `observer.query_stats` arms the
  /// per-cursor stats shards on the re-query route; call
  /// FoldQueryStats(observer) once per computation — after the last scan,
  /// on success — to sum the shards deterministically into the observer.
  /// All ParallelForWorker semantics (deterministic chunking, stop
  /// polling, early abort, error precedence) apply unchanged.
  template <typename Fn>
  Status Scan(size_t count, size_t threads, const StopToken& stop,
              const PipelineObserver& observer, const Fn& fn) const {
    const size_t workers = std::min(ResolveThreadCount(threads),
                                    std::max<size_t>(count, size_t{1}));
    PrepareCursors(workers, observer);
    return ParallelForWorker(count, threads, stop,
                             [&](size_t worker, size_t i) -> Status {
                               return fn(cursors_[worker], i);
                             });
  }

  /// Sums every cursor's query-stats shard into observer.query_stats (in
  /// worker order, so totals are deterministic) and resets the shards.
  /// No-op when stats are unarmed or the substrate is materialized.
  void FoldQueryStats(const PipelineObserver& observer) const;

 private:
  DensitySubstrate() = default;

  void PrepareCursors(size_t workers, const PipelineObserver& observer) const;

  const NeighborhoodMaterializer* m_ = nullptr;
  const Dataset* data_ = nullptr;
  const KnnIndex* index_ = nullptr;
  const Metric* metric_ = nullptr;

  // Lazily grown per-worker pool; mutable because scans are logically
  // const reads of the backend. One substrate instance must not run
  // concurrent scans (copies are the concurrency mechanism).
  mutable std::vector<Cursor> cursors_;
};

}  // namespace lofkit

#endif  // LOFKIT_LOF_DENSITY_SUBSTRATE_H_
