#include "lof/density_substrate.h"

#include "common/fail_point.h"
#include "common/string_util.h"

namespace lofkit {

Result<DensitySubstrate> DensitySubstrate::OverMaterialization(
    const NeighborhoodMaterializer& m, const Dataset* data,
    const Metric* metric) {
  if (data != nullptr && data->size() != m.size()) {
    return Status::InvalidArgument(StrFormat(
        "materializer (%zu points) and dataset (%zu points) disagree",
        m.size(), data->size()));
  }
  DensitySubstrate substrate;
  substrate.m_ = &m;
  substrate.data_ = data;
  substrate.metric_ = metric;
  return substrate;
}

Result<DensitySubstrate> DensitySubstrate::OverIndex(const Dataset& data,
                                                     const KnnIndex& index,
                                                     const Metric* metric) {
  if (data.size() == 0) {
    return Status::InvalidArgument(
        "cannot build a re-query substrate over an empty dataset");
  }
  DensitySubstrate substrate;
  substrate.data_ = &data;
  substrate.index_ = &index;
  substrate.metric_ = metric;
  return substrate;
}

Status DensitySubstrate::ValidateMinPts(size_t min_pts) const {
  if (m_ != nullptr) {
    if (min_pts == 0 || min_pts > m_->k_max()) {
      return Status::OutOfRange(
          StrFormat("min_pts (%zu) must be in [1, k_max=%zu]", min_pts,
                    m_->k_max()));
    }
    return Status::OK();
  }
  if (min_pts == 0) {
    return Status::OutOfRange("min_pts must be >= 1");
  }
  if (min_pts >= data_->size()) {
    return Status::InvalidArgument(
        StrFormat("min_pts (%zu) must be smaller than the dataset size "
                  "(%zu): every point needs min_pts neighbors besides itself",
                  min_pts, data_->size()));
  }
  return Status::OK();
}

Result<DensitySubstrate::View> DensitySubstrate::ViewOf(Cursor& cursor,
                                                        size_t i,
                                                        size_t k) const {
  if (m_ != nullptr) {
    LOFKIT_ASSIGN_OR_RETURN(auto kview, m_->View(i, k));
    return View{kview.k_distance, kview.neighborhood};
  }
  // Re-query route: one kNN query through the cursor's warm context.
  // Query(p, k) returns >= k entries whenever k < n (ValidateMinPts
  // guarantees that), so indexing entry k - 1 is always in range, and the
  // result is exactly the k-distance neighborhood a materialized View
  // would yield — same entries, same (distance, index) order, same bits.
  LOFKIT_FAIL_POINT("substrate.query");
  KnnSearchContext& ctx = cursor.ctx_;
  if (ctx.flight != nullptr && ctx.stats != nullptr &&
      ctx.flight->ShouldSample()) {
    const QueryStats before = *ctx.stats;
    const uint64_t start_ns = QueryFlightRecorder::NowNs();
    LOFKIT_RETURN_IF_ERROR(
        index_->Query(data_->point(i), k, static_cast<uint32_t>(i), ctx));
    const uint64_t end_ns = QueryFlightRecorder::NowNs();
    ctx.flight->Record(QueryFlightRecorder::Site::kSweep, index_->name(),
                       static_cast<uint32_t>(i), /*queries=*/1,
                       static_cast<uint32_t>(k), end_ns - start_ns, before,
                       *ctx.stats);
  } else {
    LOFKIT_RETURN_IF_ERROR(
        index_->Query(data_->point(i), k, static_cast<uint32_t>(i), ctx));
  }
  const std::span<const Neighbor> neighborhood = cursor.ctx_.results();
  return View{neighborhood[k - 1].distance, neighborhood};
}

void DensitySubstrate::PrepareCursors(size_t workers,
                                      const PipelineObserver& observer) const {
  if (cursors_.size() < workers) {
    cursors_.resize(workers);
  }
  // Stats shards only make sense on the re-query route (the materialized
  // route runs no queries); arm or disarm every cursor so a pool reused
  // across computations follows the current observer. Flight sampling
  // needs the counters for its per-record deltas, so an armed recorder
  // forces the stats shard on even without a query_stats sink (the fold
  // then just drops the totals).
  const bool requery = m_ == nullptr;
  const bool armed =
      requery &&
      (observer.query_stats != nullptr || observer.flight != nullptr);
  if (requery && observer.flight != nullptr) {
    observer.flight->PrepareShards(cursors_.size());
  }
  for (size_t w = 0; w < cursors_.size(); ++w) {
    Cursor& cursor = cursors_[w];
    cursor.ctx_.stats = armed ? &cursor.stats_ : nullptr;
    cursor.ctx_.flight = (requery && observer.flight != nullptr)
                             ? observer.flight->shard(w)
                             : nullptr;
  }
}

void DensitySubstrate::FoldQueryStats(const PipelineObserver& observer) const {
  // Materialized substrates never arm their cursors, so folding would only
  // add zeros — skipping entirely keeps concurrent materialized scans from
  // touching the shared observer at all.
  if (m_ != nullptr || observer.query_stats == nullptr) return;
  for (Cursor& cursor : cursors_) {
    observer.query_stats->Add(cursor.stats_);
    cursor.stats_.Reset();
  }
}

}  // namespace lofkit
