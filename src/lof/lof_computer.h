#ifndef LOFKIT_LOF_LOF_COMPUTER_H_
#define LOFKIT_LOF_LOF_COMPUTER_H_

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"
#include "index/index_factory.h"
#include "index/neighborhood_materializer.h"

namespace lofkit {

/// The LOF scores of every point for one MinPts value.
struct LofScores {
  size_t min_pts = 0;

  /// Local reachability density per point (Definition 6). +infinity when
  /// all reachability distances of the point's neighborhood are zero, which
  /// happens iff the point has at least MinPts exact duplicates (and
  /// k-distinct-distance mode is off).
  std::vector<double> lrd;

  /// Local outlier factor per point (Definition 7). The paper's convention
  /// for duplicate-degenerate points: the ratio lrd(o)/lrd(p) is taken as 1
  /// when both densities are infinite, so a fully duplicated point gets
  /// LOF 1 (it is in the densest possible region, not an outlier). A finite
  /// ratio against an infinite neighbor density propagates to +infinity.
  std::vector<double> lof;

  /// True when any lrd is infinite (duplicate degeneracy occurred).
  bool has_infinite_lrd = false;
};

/// Step 2 of the paper's two-step algorithm (section 7.4): computes LOF
/// values from the materialization database alone, in two passes — one for
/// the local reachability densities, one for the LOF values. The original
/// coordinates are never touched.
/// Knobs for the LOF computation.
struct LofComputeOptions {
  /// When false, the raw distance d(p, o) replaces the reachability
  /// distance of Definition 5 in the density estimate. The definition-5
  /// discussion predicts this "simplified" variant fluctuates much more
  /// inside homogeneous regions ("the statistical fluctuations of d(p,o)
  /// ... can be significantly reduced"); the smoothing ablation bench
  /// measures exactly that. Production use should leave this true.
  bool use_reachability = true;
};

class LofComputer {
 public:
  /// Computes LOF for `min_pts` in [1, m.k_max()] over a materialized M.
  static Result<LofScores> Compute(const NeighborhoodMaterializer& m,
                                   size_t min_pts,
                                   const LofComputeOptions& options = {});

  /// Convenience single-call pipeline: build the given index over `data`,
  /// materialize min_pts neighborhoods, and compute LOF.
  static Result<LofScores> ComputeFromScratch(
      const Dataset& data, const Metric& metric, size_t min_pts,
      IndexKind index_kind = IndexKind::kLinearScan,
      bool distinct_neighbors = false);
};

/// A point index with its outlier score, for rankings.
struct RankedOutlier {
  uint32_t index = 0;
  double score = 0.0;
};

/// Ranks points by descending score (ties by ascending index). Returns the
/// `top_n` strongest outliers, or all points when top_n == 0.
std::vector<RankedOutlier> RankDescending(std::span<const double> scores,
                                          size_t top_n = 0);

}  // namespace lofkit

#endif  // LOFKIT_LOF_LOF_COMPUTER_H_
