#ifndef LOFKIT_LOF_LOF_COMPUTER_H_
#define LOFKIT_LOF_LOF_COMPUTER_H_

#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/metrics.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"
#include "index/index_factory.h"
#include "index/neighborhood_materializer.h"
#include "lof/density_substrate.h"

namespace lofkit {

/// Wall-clock seconds spent in each phase of the pipeline, recorded for the
/// figure-10/11 performance experiments. `materialize_seconds` covers step 1
/// (index build + kNN queries) and is only filled by ComputeFromScratch;
/// Compute alone fills the step-2 scans (the k-distance pre-pass, the LRD
/// pass, and the LOF pass, each timed separately).
struct LofPhaseTimes {
  double materialize_seconds = 0.0;
  double k_distance_seconds = 0.0;
  double lrd_seconds = 0.0;
  double lof_seconds = 0.0;

  void Add(const LofPhaseTimes& other) {
    materialize_seconds += other.materialize_seconds;
    k_distance_seconds += other.k_distance_seconds;
    lrd_seconds += other.lrd_seconds;
    lof_seconds += other.lof_seconds;
  }
};

/// The LOF scores of every point for one MinPts value.
struct LofScores {
  size_t min_pts = 0;

  /// Local reachability density per point (Definition 6). +infinity when
  /// all reachability distances of the point's neighborhood are zero, which
  /// happens iff the point has at least MinPts exact duplicates (and
  /// k-distinct-distance mode is off).
  std::vector<double> lrd;

  /// Local outlier factor per point (Definition 7). The paper's convention
  /// for duplicate-degenerate points: the ratio lrd(o)/lrd(p) is taken as 1
  /// when both densities are infinite, so a fully duplicated point gets
  /// LOF 1 (it is in the densest possible region, not an outlier). A finite
  /// ratio against an infinite neighbor density propagates to +infinity.
  std::vector<double> lof;

  /// True when any lrd is infinite (duplicate degeneracy occurred).
  bool has_infinite_lrd = false;

  /// True when a memory budget forced ComputeFromScratch off the
  /// materialize-then-scan path onto the bounded-memory re-query path. The
  /// score bits are identical either way; the flag only records which route
  /// produced them (surfaced in the CLI's stats export).
  bool degraded_to_requery = false;

  /// True when a memory budget forced ComputeFromScratch onto the spill
  /// rung: M was streamed to a temporary container file and served
  /// zero-copy via mmap (LofComputeOptions::spill_directory). Score bits
  /// are identical to the in-RAM route.
  bool spilled_to_disk = false;

  /// Per-phase wall times of the computation that produced these scores.
  LofPhaseTimes phase_times;
};

/// Step 2 of the paper's two-step algorithm (section 7.4): computes LOF
/// values from the materialization database alone, in two passes — one for
/// the local reachability densities, one for the LOF values. The original
/// coordinates are never touched.
/// Knobs for the LOF computation.
struct LofComputeOptions {
  /// When false, the raw distance d(p, o) replaces the reachability
  /// distance of Definition 5 in the density estimate. The definition-5
  /// discussion predicts this "simplified" variant fluctuates much more
  /// inside homogeneous regions ("the statistical fluctuations of d(p,o)
  /// ... can be significantly reduced"); the smoothing ablation bench
  /// measures exactly that. Production use should leave this true.
  bool use_reachability = true;

  /// Worker threads for the k-distance / LRD / LOF scans (and, from
  /// ComputeFromScratch, the materialization step). 0 means one worker per
  /// hardware thread; 1 (the default) keeps the sequential path. Every
  /// thread count produces bit-identical scores: each point's slot is
  /// written by exactly one worker and the summation order inside a
  /// neighborhood never changes.
  size_t threads = 1;

  /// Observability hooks (query-cost counters + trace spans). Disabled by
  /// default; Compute records phase spans, ComputeFromScratch additionally
  /// forwards the observer into the materialization step.
  PipelineObserver observer;

  /// Cooperative cancellation/deadline token, polled at chunk boundaries of
  /// every scan (and forwarded into the materialization step by
  /// ComputeFromScratch). The default token never stops and costs a
  /// null-pointer test per check.
  StopToken stop;

  /// Memory budget in bytes for the materialization database M (0 =
  /// unlimited). When ProjectedBytes for the requested run exceeds it,
  /// ComputeFromScratch walks the degradation ladder instead of failing:
  /// spill M to disk and keep going (when `spill_directory` is set —
  /// recorded in LofScores::spilled_to_disk), else degrade to the re-query
  /// path (logged, and recorded in LofScores::degraded_to_requery).
  /// Distinct-neighbors mode has no re-query equivalent, so without a
  /// spill directory it returns kResourceExhausted. Compute itself ignores
  /// the budget: its M already exists.
  size_t memory_budget_bytes = 0;

  /// Directory for the ladder's spill rung (empty = spilling disabled).
  /// On a projected budget overflow, step 1 streams M into a uniquely
  /// named temporary container file here and serves it back zero-copy via
  /// mmap — bit-identical scores, peak RAM of one build window instead of
  /// n * k_max entries. Works in distinct-neighbors mode too (which the
  /// re-query rung cannot serve). If the spill itself fails (disk full,
  /// I/O error) the ladder falls through to re-query, except that
  /// cancellation/deadline trips — and distinct-mode failures, which have
  /// no next rung — propagate as errors.
  std::string spill_directory;

  /// Construction options for the approximate engines, forwarded by
  /// ComputeFromScratch when index_kind names one (kRkdForest); exact
  /// engines ignore them. The defaults are exact — dialing ann.search
  /// below exactness makes every downstream LOF score approximate, a trade
  /// bench_ann_quality quantifies.
  AnnIndexOptions ann;
};

class LofComputer {
 public:
  /// Computes LOF for `min_pts` in [1, m.k_max()] over a materialized M.
  /// Thin wrapper over ComputeOverSubstrate — the scans themselves run on
  /// the shared DensitySubstrate layer.
  static Result<LofScores> Compute(const NeighborhoodMaterializer& m,
                                   size_t min_pts,
                                   const LofComputeOptions& options = {});

  /// The shared core every entry point (and the "lof" LocalScorer) funnels
  /// through: the k-distance / LRD / LOF passes over a DensitySubstrate.
  /// Works on both substrate routes with bit-identical scores — each
  /// point's slot is written by exactly one worker and the summation order
  /// inside a neighborhood never changes, so every thread count and both
  /// backends agree bit for bit.
  static Result<LofScores> ComputeOverSubstrate(
      const DensitySubstrate& substrate, size_t min_pts,
      const LofComputeOptions& options = {});

  /// Convenience single-call pipeline: build the given index over `data`,
  /// materialize min_pts neighborhoods (in parallel when options.threads
  /// asks for it), and compute LOF with the given options. A memory budget
  /// that the projected M would overflow reroutes to ComputeRequery (see
  /// LofComputeOptions::memory_budget_bytes).
  static Result<LofScores> ComputeFromScratch(
      const Dataset& data, const Metric& metric, size_t min_pts,
      IndexKind index_kind = IndexKind::kLinearScan,
      bool distinct_neighbors = false, const LofComputeOptions& options = {});

  /// Compute restricted to a candidate set: the cheap k-distance scan
  /// still covers every point, the LRD scan shrinks to the candidates'
  /// one-hop closure (a candidate's LOF reads its neighbors' densities,
  /// and neighbors need not be candidates themselves), and the LOF pass
  /// visits only `candidates`. All other entries of LofScores::lrd/lof are
  /// quiet NaN — RankDescending sorts them after every real score, so
  /// ranking the sparse lof array still yields the candidates' exact
  /// order. Candidate slots carry bit-identical values to a full Compute
  /// at every thread count. `candidates` must be strictly ascending and in
  /// [0, m.size()); this is the evaluation stage of the prune-first top-N
  /// path (LofPruner).
  static Result<LofScores> ComputeForCandidates(
      const NeighborhoodMaterializer& m, size_t min_pts,
      std::span<const uint32_t> candidates,
      const LofComputeOptions& options = {});

  /// Bounded-memory alternative to materialize-then-Compute: never builds
  /// M, instead re-running the kNN query per point in each scan (the
  /// k-distance pre-pass, the LRD pass, and the LOF pass — 3n queries
  /// instead of n). Peak extra memory is three n-sized double arrays,
  /// independent of min_pts, versus M's n * min_pts neighbor entries.
  ///
  /// Score bits are identical to the materialized path at every thread
  /// count: Query(p, k) returns exactly the k-distance neighborhood (ties
  /// included, (distance, index) order) that View(p, k) yields, so every
  /// floating-point accumulation happens in the same order. `index` must
  /// already be built over `data`. Distinct-neighbors mode is not supported
  /// (its k-distinct growth loop is a materializer feature) and returns
  /// InvalidArgument.
  static Result<LofScores> ComputeRequery(
      const Dataset& data, const KnnIndex& index, size_t min_pts,
      const LofComputeOptions& options = {});
};

/// A point index with its outlier score, for rankings.
struct RankedOutlier {
  uint32_t index = 0;
  double score = 0.0;
};

/// Ranks points by descending score (ties by ascending index). NaN scores
/// sort after every real score (including -infinity), again by ascending
/// index — a deterministic total order, so NaNs can never trip std::sort's
/// strict-weak-ordering requirement. Returns the `top_n` strongest
/// outliers, or all points when top_n == 0.
std::vector<RankedOutlier> RankDescending(std::span<const double> scores,
                                          size_t top_n = 0);

}  // namespace lofkit

#endif  // LOFKIT_LOF_LOF_COMPUTER_H_
