#include "lof/scorer_sweep.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace lofkit {

namespace {

// Accumulates one step's phase times into the sweep's merged vector,
// matching by name (first-seen order). Every scorer reports the same phase
// vocabulary at every step, so the merged vector mirrors one step's shape.
void MergePhases(std::vector<ScorerPhase>& merged,
                 const std::vector<ScorerPhase>& step) {
  for (const ScorerPhase& phase : step) {
    auto it = std::find_if(
        merged.begin(), merged.end(),
        [&](const ScorerPhase& p) { return p.name == phase.name; });
    if (it != merged.end()) {
      it->seconds += phase.seconds;
    } else {
      merged.push_back(phase);
    }
  }
}

}  // namespace

double ScorerSweepResult::PhaseSeconds(std::string_view name) const {
  for (const ScorerPhase& phase : phases) {
    if (phase.name == name) return phase.seconds;
  }
  return 0.0;
}

Result<ScorerSweepResult> ScorerSweep::Run(const DensitySubstrate& substrate,
                                           const LocalScorer& scorer,
                                           size_t min_pts_lb,
                                           size_t min_pts_ub,
                                           LofAggregation aggregation,
                                           bool keep_per_min_pts,
                                           const LocalScorerOptions& options) {
  LOFKIT_RETURN_IF_ERROR(ValidateSweepRange(min_pts_lb, min_pts_ub));
  if (substrate.materialized()) {
    if (min_pts_ub > substrate.k_max()) {
      return Status::OutOfRange(
          StrFormat("MinPtsUB (%zu) exceeds the materialized k_max (%zu)",
                    min_pts_ub, substrate.k_max()));
    }
  } else if (min_pts_ub >= substrate.size()) {
    return Status::InvalidArgument(
        StrFormat("MinPtsUB (%zu) must be smaller than the dataset size "
                  "(%zu)",
                  min_pts_ub, substrate.size()));
  }
  const size_t n = substrate.size();
  const size_t steps = min_pts_ub - min_pts_lb + 1;
  ScorerSweepResult result;
  result.min_pts_lb = min_pts_lb;
  result.min_pts_ub = min_pts_ub;
  result.aggregation = aggregation;
  result.degraded_to_requery = !substrate.materialized();
  std::vector<double> aggregated = MakeAggregationIdentity(aggregation, n);

  result.step_seconds.assign(steps, 0.0);

  if (substrate.materialized()) {
    // The per-MinPts computations are independent (each reads only the
    // substrate's backend), so they shard over the step axis; a
    // single-step sweep has no step parallelism, so the threads go into
    // the scorer's scans instead. Aggregating afterwards in ascending
    // MinPts order keeps the floating-point accumulation order — and thus
    // the result bits — identical to the sequential path.
    std::vector<LocalScores> per_step(steps);
    LOFKIT_RETURN_IF_ERROR(ParallelForWorker(
        steps, options.threads, options.stop,
        [&](size_t worker, size_t step) -> Status {
          // Span naming matches the re-query route step for step. A
          // multi-step sweep redirects the step span and the scorer's
          // nested phase spans (via trace_tid) onto the step worker's
          // track, so concurrent steps never pile onto one tid; the
          // single-step case stays on the caller's track.
          const uint32_t tid =
              steps == 1 ? options.observer.trace_tid
                         : static_cast<uint32_t>(worker + 1);
          TraceRecorder::Span span(
              options.observer.trace,
              StrFormat("sweep.min_pts_%zu", min_pts_lb + step), tid);
          LocalScorerOptions step_options = options;
          step_options.threads = steps == 1 ? options.threads : 1;
          step_options.observer.trace_tid = tid;
          if (steps != 1) {
            // Concurrent steps may not share the caller's plain-counter
            // sinks; on this (materialized) route the scorers run no kNN
            // queries anyway, so dropping them loses nothing.
            step_options.observer.query_stats = nullptr;
            step_options.observer.flight = nullptr;
          }
          const auto step_start = std::chrono::steady_clock::now();
          // Each concurrent step scores its own cursor-pool copy; the
          // single-step case keeps the caller's substrate so its pool
          // stays warm.
          const DensitySubstrate local(substrate);
          LOFKIT_ASSIGN_OR_RETURN(
              per_step[step],
              scorer.Score(steps == 1 ? substrate : local,
                           min_pts_lb + step, step_options));
          result.step_seconds[step] =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            step_start)
                  .count();
          if (options.observer.progress != nullptr) {
            options.observer.progress->Add(n);
          }
          return Status::OK();
        }));
    for (LocalScores& scores : per_step) {
      MergePhases(result.phases, scores.phases);
      result.has_infinite_density |= scores.has_infinite_density;
      AggregateStep(aggregation, steps, scores.score, aggregated);
      if (keep_per_min_pts) {
        result.per_min_pts.push_back(std::move(scores));
      }
    }
  } else {
    // Bounded-memory route: sequential ascending steps, threads and
    // observer inside each step — so peak memory stays at a few n-sized
    // arrays regardless of the range width, and the aggregation order
    // (and every aggregated bit) matches the materialized branch.
    for (size_t step = 0; step < steps; ++step) {
      TraceRecorder::Span span(
          options.observer.trace,
          StrFormat("sweep.min_pts_%zu", min_pts_lb + step),
          options.observer.trace_tid);
      const auto step_start = std::chrono::steady_clock::now();
      LOFKIT_ASSIGN_OR_RETURN(
          LocalScores scores,
          scorer.Score(substrate, min_pts_lb + step, options));
      span.End();
      result.step_seconds[step] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        step_start)
              .count();
      if (options.observer.progress != nullptr) {
        options.observer.progress->Add(n);
      }
      MergePhases(result.phases, scores.phases);
      result.has_infinite_density |= scores.has_infinite_density;
      AggregateStep(aggregation, steps, scores.score, aggregated);
      if (keep_per_min_pts) {
        result.per_min_pts.push_back(std::move(scores));
      }
    }
  }
  result.aggregated = std::move(aggregated);
  return result;
}

Result<std::vector<RankedOutlier>> ScorerSweep::RankOutliers(
    const Dataset& data, const Metric& metric, const LocalScorer& scorer,
    size_t min_pts_lb, size_t min_pts_ub, size_t top_n, IndexKind index_kind,
    LofAggregation aggregation, const LocalScorerOptions& options,
    const ScorerPipelineOptions& pipeline) {
  std::unique_ptr<KnnIndex> index = CreateIndex(index_kind, pipeline.ann);
  if (index == nullptr) {
    return Status::Internal("index factory returned null");
  }
  LOFKIT_RETURN_IF_ERROR(index->Build(data, metric));
  if (pipeline.degraded_to_requery != nullptr) {
    *pipeline.degraded_to_requery = false;
  }
  const size_t budget = pipeline.memory_budget_bytes;
  if (budget != 0 && NeighborhoodMaterializer::ProjectedBytes(
                         data.size(), min_pts_ub) > budget) {
    LOFKIT_LOG(Warning)
        << "projected materialization ("
        << NeighborhoodMaterializer::ProjectedBytes(data.size(), min_pts_ub)
        << " bytes) exceeds the memory budget (" << budget
        << " bytes); degrading the sweep to the re-query path";
    if (pipeline.degraded_to_requery != nullptr) {
      *pipeline.degraded_to_requery = true;
    }
    LOFKIT_ASSIGN_OR_RETURN(DensitySubstrate substrate,
                            DensitySubstrate::OverIndex(data, *index,
                                                        &metric));
    LOFKIT_ASSIGN_OR_RETURN(
        ScorerSweepResult sweep,
        Run(substrate, scorer, min_pts_lb, min_pts_ub, aggregation,
            /*keep_per_min_pts=*/false, options));
    return RankDescending(sweep.aggregated, top_n);
  }
  LOFKIT_ASSIGN_OR_RETURN(
      NeighborhoodMaterializer m,
      NeighborhoodMaterializer::MaterializeParallel(
          data, *index, min_pts_ub, options.threads,
          /*distinct_neighbors=*/false, options.observer, options.stop));
  LOFKIT_ASSIGN_OR_RETURN(
      DensitySubstrate substrate,
      DensitySubstrate::OverMaterialization(m, &data, &metric));
  LOFKIT_ASSIGN_OR_RETURN(
      ScorerSweepResult sweep,
      Run(substrate, scorer, min_pts_lb, min_pts_ub, aggregation,
          /*keep_per_min_pts=*/false, options));
  return RankDescending(sweep.aggregated, top_n);
}

}  // namespace lofkit
