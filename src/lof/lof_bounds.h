#ifndef LOFKIT_LOF_LOF_BOUNDS_H_
#define LOFKIT_LOF_LOF_BOUNDS_H_

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"
#include "index/neighborhood_materializer.h"

namespace lofkit {

/// The four reachability statistics of section 5.2 for one object p:
/// extremes of reach-dist(p, q) over p's direct MinPts-neighborhood, and of
/// reach-dist(q, o) over its indirect neighborhood (the neighborhoods of
/// p's neighbors).
struct NeighborhoodStats {
  double direct_min = 0.0;
  double direct_max = 0.0;
  double indirect_min = 0.0;
  double indirect_max = 0.0;
};

/// A lower/upper estimate of a LOF value.
struct LofBoundEstimate {
  double lower = 0.0;
  double upper = 0.0;
};

/// Computes direct/indirect reachability extremes for point `i`. Fails with
/// FailedPrecondition when the materialized neighborhood is empty or the
/// extremes come out inverted/non-finite (a corrupt or hand-built M) —
/// sentinel infinities must never leak into the bound arithmetic below.
Result<NeighborhoodStats> ComputeNeighborhoodStats(
    const NeighborhoodMaterializer& m, size_t i, size_t min_pts);

/// Theorem 1:  direct_min/indirect_max <= LOF(p) <= direct_max/indirect_min.
///
/// Zero denominators (possible on duplicate-heavy data, where reachability
/// distances collapse to 0) are resolved so the bounds stay conservative
/// under LofScores' duplicate conventions:
///   - indirect_max == 0 means every neighbor has infinite lrd. With
///     direct_max > 0 the exact LOF is +inf, so lower = +inf is exact;
///     with direct_max == 0 the point itself is infinitely dense and the
///     inf/inf := 1 convention pins LOF at exactly 1, so the bounds are
///     [1, 1].
///   - indirect_min == 0 alone (some, but not all, indirect reachabilities
///     are zero) makes the upper ratio unbounded: upper = +inf, never a
///     dropped 0-contribution that could certify a true outlier as inlier.
LofBoundEstimate Theorem1Bounds(const NeighborhoodStats& stats);

/// Per-group reachability extremes of Theorem 2 (section 5.4): the
/// cardinality of N_MinPts(p) ∩ group and the direct/indirect reach-dist
/// extremes restricted to that group's members.
struct GroupReachabilityStats {
  size_t cardinality = 0;
  double direct_min = 0.0;
  double direct_max = 0.0;
  double indirect_min = 0.0;
  double indirect_max = 0.0;
};

/// Combines per-group extremes into the Theorem-2 aggregate bounds
///   sum_i xi_i*direct^i_min * sum_i xi_i/indirect^i_max <= LOF(p)
///   LOF(p) <= sum_i xi_i*direct^i_max * sum_i xi_i/indirect^i_min
/// with the same zero-denominator policy as Theorem1Bounds (a group with
/// indirect_min == 0 makes the aggregate upper unbounded instead of
/// dropping its term; with a single group this degenerates to Theorem 1,
/// Corollary 1). `total` is |N_MinPts(p)| (> 0, the sum of cardinalities).
/// Shared by the reference Theorem2Bounds and LofPruner's O(n*k) path so
/// the two can never disagree on bound safety.
LofBoundEstimate CombineGroupBounds(
    std::span<const GroupReachabilityStats> groups, size_t total);

/// Theorem 2: the partition-aware bounds. `point_partition` assigns every
/// dataset point a group id (>= 0); the partition of N_MinPts(p) is induced
/// by these ids. With a single group this degenerates to Theorem 1
/// (Corollary 1). Fails if a neighbor of `i` carries a negative id.
Result<LofBoundEstimate> Theorem2Bounds(const NeighborhoodMaterializer& m,
                                        size_t i, size_t min_pts,
                                        std::span<const int> point_partition);

/// Lemma 1 for a cluster C: epsilon = reach-dist-max/reach-dist-min - 1 over
/// all ordered pairs in C, giving 1/(1+eps) <= LOF(p) <= 1+eps for objects
/// deep in C.
struct Lemma1Result {
  double reach_dist_min = 0.0;
  double reach_dist_max = 0.0;
  double epsilon = 0.0;
  LofBoundEstimate bounds;
};
Result<Lemma1Result> Lemma1Bounds(const Dataset& data, const Metric& metric,
                                  const NeighborhoodMaterializer& m,
                                  std::span<const uint32_t> cluster,
                                  size_t min_pts);

/// True when point `i` is "deep" in the sense of Lemma 1: all its MinPts
/// nearest neighbors q lie in the cluster (in_cluster[q]) and so do all of
/// the q's MinPts nearest neighbors.
Result<bool> IsDeepInCluster(const NeighborhoodMaterializer& m, size_t i,
                             size_t min_pts,
                             const std::vector<bool>& in_cluster);

/// The analytic model behind Figures 4 and 5 (section 5.3): with
/// direct = ratio * indirect and a symmetric fluctuation of pct percent,
///   LOF_min = ratio * (1 - x) / (1 + x),  LOF_max = ratio * (1 + x) / (1 - x)
/// where x = pct / 100.
LofBoundEstimate AnalyticBounds(double direct_over_indirect, double pct);

/// The closed form of Figure 5:
///   (LOF_max - LOF_min) / (direct/indirect) = 4 * x / (1 - x^2),  x = pct/100.
double AnalyticRelativeSpan(double pct);

}  // namespace lofkit

#endif  // LOFKIT_LOF_LOF_BOUNDS_H_
