#ifndef LOFKIT_LOF_LOF_BOUNDS_H_
#define LOFKIT_LOF_LOF_BOUNDS_H_

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"
#include "index/neighborhood_materializer.h"

namespace lofkit {

/// The four reachability statistics of section 5.2 for one object p:
/// extremes of reach-dist(p, q) over p's direct MinPts-neighborhood, and of
/// reach-dist(q, o) over its indirect neighborhood (the neighborhoods of
/// p's neighbors).
struct NeighborhoodStats {
  double direct_min = 0.0;
  double direct_max = 0.0;
  double indirect_min = 0.0;
  double indirect_max = 0.0;
};

/// A lower/upper estimate of a LOF value.
struct LofBoundEstimate {
  double lower = 0.0;
  double upper = 0.0;
};

/// Computes direct/indirect reachability extremes for point `i`.
Result<NeighborhoodStats> ComputeNeighborhoodStats(
    const NeighborhoodMaterializer& m, size_t i, size_t min_pts);

/// Theorem 1:  direct_min/indirect_max <= LOF(p) <= direct_max/indirect_min.
LofBoundEstimate Theorem1Bounds(const NeighborhoodStats& stats);

/// Theorem 2: the partition-aware bounds. `point_partition` assigns every
/// dataset point a group id (>= 0); the partition of N_MinPts(p) is induced
/// by these ids. With a single group this degenerates to Theorem 1
/// (Corollary 1). Fails if a neighbor of `i` carries a negative id.
Result<LofBoundEstimate> Theorem2Bounds(const NeighborhoodMaterializer& m,
                                        size_t i, size_t min_pts,
                                        std::span<const int> point_partition);

/// Lemma 1 for a cluster C: epsilon = reach-dist-max/reach-dist-min - 1 over
/// all ordered pairs in C, giving 1/(1+eps) <= LOF(p) <= 1+eps for objects
/// deep in C.
struct Lemma1Result {
  double reach_dist_min = 0.0;
  double reach_dist_max = 0.0;
  double epsilon = 0.0;
  LofBoundEstimate bounds;
};
Result<Lemma1Result> Lemma1Bounds(const Dataset& data, const Metric& metric,
                                  const NeighborhoodMaterializer& m,
                                  std::span<const uint32_t> cluster,
                                  size_t min_pts);

/// True when point `i` is "deep" in the sense of Lemma 1: all its MinPts
/// nearest neighbors q lie in the cluster (in_cluster[q]) and so do all of
/// the q's MinPts nearest neighbors.
Result<bool> IsDeepInCluster(const NeighborhoodMaterializer& m, size_t i,
                             size_t min_pts,
                             const std::vector<bool>& in_cluster);

/// The analytic model behind Figures 4 and 5 (section 5.3): with
/// direct = ratio * indirect and a symmetric fluctuation of pct percent,
///   LOF_min = ratio * (1 - x) / (1 + x),  LOF_max = ratio * (1 + x) / (1 - x)
/// where x = pct / 100.
LofBoundEstimate AnalyticBounds(double direct_over_indirect, double pct);

/// The closed form of Figure 5:
///   (LOF_max - LOF_min) / (direct/indirect) = 4 * x / (1 - x^2),  x = pct/100.
double AnalyticRelativeSpan(double pct);

}  // namespace lofkit

#endif  // LOFKIT_LOF_LOF_BOUNDS_H_
